// Fixed-size thread pool with deterministic data-parallel primitives.
//
// The flow engine's hot kernels (CG SpMV/dot products, clique assembly,
// partitioner region splits, Lily candidate evaluation) are expressed as
// parallel_for / parallel_reduce over index ranges. Two design rules keep
// multi-threaded runs bit-identical to LILY_THREADS=1:
//
//  1. Work is split into chunks of a FIXED grain that depends only on the
//     problem size, never on the thread count. Chunk c always covers the
//     same index range no matter how many workers exist.
//  2. Reductions are ORDERED: every chunk produces its partial result into
//     a slot indexed by its chunk number, and the partials are combined
//     serially in chunk order. Floating-point summation order is therefore
//     a function of the grain alone, so 1-thread and N-thread runs agree to
//     the last bit. The serial fallback path walks the same chunks in the
//     same order.
//
// Nested parallel regions execute inline on the calling worker (no
// deadlock, no oversubscription); determinism is unaffected because the
// chunk decomposition does not change.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lily {

/// LILY_THREADS environment variable (unset/empty/unparsable -> 0).
std::size_t lily_threads_from_env();

/// Thread count to use when nothing was requested explicitly: LILY_THREADS
/// if set, otherwise the hardware concurrency. Always >= 1.
std::size_t default_thread_count();

/// A fixed-size pool of worker threads executing chunked index ranges. The
/// calling thread always participates, so a pool of size N uses N-1 workers.
class ThreadPool {
public:
    /// `n_threads == 0` means default_thread_count().
    explicit ThreadPool(std::size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// The process-wide pool used by parallel_for / parallel_reduce. Sized
    /// by default_thread_count() on first use; FlowOptions::threads resizes
    /// it at flow entry.
    static ThreadPool& global();

    /// Total parallelism (workers + the calling thread). Always >= 1.
    std::size_t size() const { return workers_.size() + 1; }

    /// Change the pool size. Must not be called while a region is running
    /// (flows reconfigure the pool only between stages). No-op if the size
    /// is unchanged.
    void resize(std::size_t n_threads);

    /// True when the current thread is one of this process's pool workers —
    /// nested regions then run inline.
    static bool in_worker();

    /// Execute chunk(0..n_chunks-1), each exactly once, distributed over
    /// the pool; blocks until all chunks completed. The first exception
    /// thrown by a chunk is rethrown here (remaining chunks still run).
    void run_chunks(std::size_t n_chunks, const std::function<void(std::size_t)>& chunk);

private:
    struct Region;

    void start_workers(std::size_t n_workers);
    void stop_workers();
    void worker_loop();
    void execute(Region& region);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    Region* region_ = nullptr;    // guarded by mutex_
    std::uint64_t generation_ = 0;  // guarded by mutex_
    bool stop_ = false;           // guarded by mutex_
};

/// Default elements-per-chunk for the element-wise kernels. Fixed (not a
/// function of thread count) so the chunk decomposition — and with it the
/// floating-point combination order — is reproducible.
inline constexpr std::size_t kParallelGrain = 2048;

/// Number of fixed-grain chunks covering [0, n).
inline std::size_t parallel_chunk_count(std::size_t n, std::size_t grain) {
    grain = std::max<std::size_t>(1, grain);
    return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// body(begin, end) over disjoint subranges of [first, last). Runs serially
/// (same ranges, ascending order) when the pool has one lane, the range is
/// a single chunk, or we are already inside a parallel region.
template <typename Body>
void parallel_for(std::size_t first, std::size_t last, Body&& body,
                  std::size_t grain = kParallelGrain) {
    if (first >= last) return;
    grain = std::max<std::size_t>(1, grain);
    const std::size_t n = last - first;
    const std::size_t chunks = parallel_chunk_count(n, grain);
    ThreadPool& pool = ThreadPool::global();
    if (chunks <= 1 || pool.size() <= 1 || ThreadPool::in_worker()) {
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = first + c * grain;
            body(b, std::min(last, b + grain));
        }
        return;
    }
    pool.run_chunks(chunks, [&](std::size_t c) {
        const std::size_t b = first + c * grain;
        body(b, std::min(last, b + grain));
    });
}

/// Ordered deterministic reduction: acc = combine(acc, map(begin, end)) over
/// the fixed-grain chunks of [first, last), combined in ascending chunk
/// order. `map` must be pure over its subrange; `combine` is always applied
/// on the calling thread. Bit-identical for every pool size.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t first, std::size_t last, T init, Map&& map, Combine&& combine,
                  std::size_t grain = kParallelGrain) {
    if (first >= last) return init;
    grain = std::max<std::size_t>(1, grain);
    const std::size_t chunks = parallel_chunk_count(last - first, grain);
    ThreadPool& pool = ThreadPool::global();
    T acc = std::move(init);
    if (chunks <= 1 || pool.size() <= 1 || ThreadPool::in_worker()) {
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = first + c * grain;
            acc = combine(std::move(acc), map(b, std::min(last, b + grain)));
        }
        return acc;
    }
    std::vector<T> partials(chunks);
    pool.run_chunks(chunks, [&](std::size_t c) {
        const std::size_t b = first + c * grain;
        partials[c] = map(b, std::min(last, b + grain));
    });
    for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partials[c]));
    return acc;
}

/// Run two independent tasks, concurrently when the pool allows. Each task
/// must be deterministic on its own; they may not write shared state.
template <typename F0, typename F1>
void parallel_invoke(F0&& f0, F1&& f1) {
    ThreadPool& pool = ThreadPool::global();
    if (pool.size() <= 1 || ThreadPool::in_worker()) {
        f0();
        f1();
        return;
    }
    pool.run_chunks(2, [&](std::size_t i) {
        if (i == 0) {
            f0();
        } else {
            f1();
        }
    });
}

}  // namespace lily
