// Subprocess and pipe-IPC helpers for the crash-isolated serving layer.
//
// The serving daemon's unit of failure isolation is a *process*: every job
// runs in a forked worker, and the test/bench harnesses spawn the daemon
// itself as a child. These helpers wrap the POSIX plumbing — pipe pairs
// with close-on-exec discipline, fork+exec spawning, non-blocking child
// reaping, and resident-set sampling from /proc — behind small RAII types
// so the supervisor logic stays readable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include <sys/types.h>

#include "util/status.hpp"

namespace lily {

/// An RAII pipe pair. Either end can be released to a child or closed
/// early; destruction closes whatever is still open.
struct Pipe {
    int read_fd = -1;
    int write_fd = -1;

    Pipe() = default;
    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;
    Pipe(Pipe&& other) noexcept { *this = std::move(other); }
    Pipe& operator=(Pipe&& other) noexcept;
    ~Pipe() { close_both(); }

    /// Create the pair (CLOEXEC on both ends). Ok or Internal.
    Status open();
    void close_read();
    void close_write();
    void close_both();
};

/// How a supervised child ended.
enum class ExitKind : std::uint8_t {
    Running,   // still alive
    Exited,    // normal exit; `code` holds the exit status
    Signaled,  // killed by a signal; `code` holds the signal number
};

struct ExitStatus {
    ExitKind kind = ExitKind::Running;
    int code = 0;

    bool running() const { return kind == ExitKind::Running; }
    std::string to_string() const;
};

/// Non-blocking reap: WNOHANG waitpid with EINTR retry. Returns Running
/// while the child is alive. Calling again after a child was reaped keeps
/// returning the reaped status.
ExitStatus try_wait(pid_t pid);

/// Blocking reap with EINTR retry.
ExitStatus wait_exit(pid_t pid);

/// Resident set size of a live process in bytes, read from
/// /proc/<pid>/statm (0 when the process is gone or /proc is unreadable —
/// callers treat 0 as "no sample", never as a breach).
std::size_t process_rss_bytes(pid_t pid);

/// fork+exec `argv` (argv[0] is the binary path). The child's stdin is
/// /dev/null; stdout/stderr are inherited unless `stderr_to` names a file
/// to append both to. Returns the child pid or Internal.
StatusOr<pid_t> spawn_process(const std::vector<std::string>& argv,
                              const std::string& stderr_to = "");

/// SIGTERM then (after `grace_ms`) SIGKILL; reaps and returns the final
/// status. Safe to call on an already-dead pid.
ExitStatus stop_process(pid_t pid, double grace_ms = 2000.0);

}  // namespace lily
