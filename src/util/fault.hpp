// Deterministic fault injection for exercising the recovery ladder.
//
// A fault spec is "stage:kind[,stage:kind...]" and comes from either the
// LILY_FAULT environment variable or set_fault_spec() (tests, lily_lint's
// --inject, the serving daemon's per-job fault field). Stages probed by the
// pipeline:
//
//   parser:skip-gate      genlib reader treats the widest gate as over-fanin
//                         (skipped with a diagnostic; library still loads)
//   placement:diverge     the inchoate global placement reports
//                         ConvergenceFailure (flow falls back to wire-blind
//                         baseline mapping)
//   matcher:no-match      the Lily DP finds no match at the first gate node
//                         (flow falls back to wire-blind baseline mapping)
//   router:overbudget     global routing behaves as if its budget were
//                         already exhausted (metrics fall back to HPWL)
//   verify:miscompare     the verify stage flips one mapped gate to a
//                         same-arity gate with a different function before
//                         checking; the CEC engine must refute it with a
//                         replayable counterexample
//   eco:stale-epoch       run_eco_flow_checked sees a mapping stamped with
//                         an older network version and must reject it
//   serve:*               probed only inside forked lily_serve workers,
//                         before the job's flow starts (see serve/worker.hpp):
//                         segv / abort crash the worker, oom allocates until
//                         the supervisor's RSS ceiling kills it, hang spins
//                         past the wall-clock ceiling, wedge goes silent so
//                         the heartbeat watchdog fires. Plain kinds fire only
//                         at the full effort tier (the degraded retry
//                         survives them); "-sticky" variants fire at every
//                         tier and drive the job to a terminal error.
//
// Injection is read-only configuration: with no spec set, every probe is
// false and the pipeline is byte-for-byte the unfaulted one.
//
// Thread and fork safety: the registry is a mutex-guarded process-global.
// Probes take a snapshot of the spec under the lock and parse the snapshot,
// so pool threads polling fault_enabled() concurrently with a set_fault_spec
// see either the old spec or the new one, never a torn string. A forked
// child inherits the parent's spec by value (plain memory, no locks held
// across fork as long as the forking thread is not itself inside the
// registry — the serving daemon forks from its single-threaded supervisor
// loop).
#pragma once

#include <string>
#include <string_view>

namespace lily {

/// True when the active spec lists `stage` (with any kind).
bool fault_enabled(std::string_view stage);

/// True when the active spec lists exactly `stage:kind`.
bool fault_enabled(std::string_view stage, std::string_view kind);

/// Override the spec ("" clears, reverting to LILY_FAULT). Thread-safe;
/// concurrent probes see the old or new spec atomically.
void set_fault_spec(std::string spec);

/// Snapshot of the active spec text (after env/override resolution).
std::string fault_spec();

}  // namespace lily
