// Deterministic fault injection for exercising the recovery ladder.
//
// A fault spec is "stage:kind[,stage:kind...]" and comes from either the
// LILY_FAULT environment variable or set_fault_spec() (tests, lily_lint's
// --inject). Stages probed by the pipeline:
//
//   parser:skip-gate      genlib reader treats the widest gate as over-fanin
//                         (skipped with a diagnostic; library still loads)
//   placement:diverge     the inchoate global placement reports
//                         ConvergenceFailure (flow falls back to wire-blind
//                         baseline mapping)
//   matcher:no-match      the Lily DP finds no match at the first gate node
//                         (flow falls back to wire-blind baseline mapping)
//   router:overbudget     global routing behaves as if its budget were
//                         already exhausted (metrics fall back to HPWL)
//   verify:miscompare     the verify stage flips one mapped gate to a
//                         same-arity gate with a different function before
//                         checking; the CEC engine must refute it with a
//                         replayable counterexample
//   eco:stale-epoch       run_eco_flow_checked sees a mapping stamped with
//                         an older network version and must reject it
//
// Injection is read-only configuration: with no spec set, every probe is
// false and the pipeline is byte-for-byte the unfaulted one.
#pragma once

#include <string>
#include <string_view>

namespace lily {

/// True when the active spec lists `stage` (with any kind).
bool fault_enabled(std::string_view stage);

/// True when the active spec lists exactly `stage:kind`.
bool fault_enabled(std::string_view stage, std::string_view kind);

/// Override the spec ("" clears, reverting to LILY_FAULT). Not thread-safe;
/// intended for test setup and tool flag parsing.
void set_fault_spec(std::string spec);

/// The active spec text (after env/override resolution).
std::string fault_spec();

}  // namespace lily
