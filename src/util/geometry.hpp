// Planar geometry primitives used by placement, routing estimation and the
// layout-driven mapper: points, rectangles and the distance queries the
// paper's cost functions are built from (Manhattan / Euclidean norms,
// point-to-rectangle distances, enclosing rectangles, medians).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace lily {

/// A point in the (continuous) placement plane.
struct Point {
    double x = 0.0;
    double y = 0.0;

    constexpr Point() = default;
    constexpr Point(double px, double py) : x(px), y(py) {}

    constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
    constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
    constexpr Point operator*(double s) const { return {x * s, y * s}; }
    constexpr Point operator/(double s) const { return {x / s, y / s}; }
    Point& operator+=(const Point& o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr bool operator==(const Point& o) const = default;
};

/// Manhattan (rectilinear) distance — the routing metric.
inline double manhattan(const Point& a, const Point& b) {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance — used by the quadratic placement objective.
inline double euclidean(const Point& a, const Point& b) {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (the actual quadratic-placement summand).
inline double euclidean_sq(const Point& a, const Point& b) {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy;
}

/// An axis-aligned rectangle, kept as lower-left (ll) / upper-right (ur)
/// corners. An empty rectangle has ll > ur and absorbs nothing.
struct Rect {
    Point ll{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()};
    Point ur{std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()};

    constexpr Rect() = default;
    constexpr Rect(Point lower_left, Point upper_right) : ll(lower_left), ur(upper_right) {}

    bool empty() const { return ll.x > ur.x || ll.y > ur.y; }
    double width() const { return empty() ? 0.0 : ur.x - ll.x; }
    double height() const { return empty() ? 0.0 : ur.y - ll.y; }
    double half_perimeter() const { return width() + height(); }
    double area() const { return width() * height(); }
    Point center() const { return {(ll.x + ur.x) / 2.0, (ll.y + ur.y) / 2.0}; }

    /// Grow to include a point.
    void expand(const Point& p) {
        ll.x = std::min(ll.x, p.x);
        ll.y = std::min(ll.y, p.y);
        ur.x = std::max(ur.x, p.x);
        ur.y = std::max(ur.y, p.y);
    }

    /// Grow to include another rectangle.
    void expand(const Rect& r) {
        if (r.empty()) return;
        expand(r.ll);
        expand(r.ur);
    }

    bool contains(const Point& p) const {
        return !empty() && p.x >= ll.x && p.x <= ur.x && p.y >= ll.y && p.y <= ur.y;
    }
};

/// Smallest rectangle enclosing a set of points.
Rect bounding_box(std::span<const Point> pts);

/// Half perimeter of the bounding box of a set of points (HPWL of one net).
double half_perimeter_wirelength(std::span<const Point> pts);

/// Manhattan distance from a point to a rectangle (0 if inside). This is the
/// separable distance function f(x)+f(y) of Section 3.2 of the paper.
double manhattan_to_rect(const Point& p, const Rect& r);

/// Center of mass of a set of points (unweighted). Empty input -> origin.
Point center_of_mass(std::span<const Point> pts);

/// Weighted center of mass. Weights must be non-negative; if they sum to
/// zero, falls back to the unweighted center of mass.
Point center_of_mass(std::span<const Point> pts, std::span<const double> weights);

/// The 1-D median of a list of coordinates: the minimizer of sum |x - xi|.
/// For an even count any point between the two middle values is optimal; we
/// return their midpoint. Empty input -> 0.
double median_coordinate(std::vector<double> xs);

/// Minimizer of the sum of Manhattan distances to a set of rectangles
/// (the CM-of-Fans placement update, Manhattan norm, Section 3.2). The
/// problem separates per axis into a weighted-median over rectangle corner
/// coordinates.
Point manhattan_median_of_rects(std::span<const Rect> rects);

/// Reusable corner-coordinate buffers for manhattan_median_of_rects. The
/// Lily DP evaluates a rectangle median per candidate match; one warm
/// scratch per evaluation loop makes those calls allocation-free. Both
/// overloads produce bit-identical results (the selected order statistics
/// are value-determined, not layout-determined).
struct MedianScratch {
    std::vector<double> xs, ys;
};

Point manhattan_median_of_rects(std::span<const Rect> rects, MedianScratch& scratch);

}  // namespace lily
