// Sparse symmetric positive-definite linear algebra for quadratic placement.
// GORDIAN-style global placement minimizes sum_e w_e (x_i - x_j)^2 with some
// nodes (pads) fixed, which reduces to solving A x = b where A is the
// weighted graph Laplacian restricted to movable nodes. A is symmetric
// positive definite whenever every connected component touches a fixed node,
// so a (Jacobi-preconditioned) conjugate gradient solver is the right tool.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/budget.hpp"

namespace lily {

/// Row-compressed symmetric sparse matrix built from coordinate triplets.
/// Both (i,j) and (j,i) entries must be added by the builder; duplicates are
/// summed. Only the pattern actually added is stored.
class SparseMatrix {
public:
    /// Incremental builder: accumulate coordinate entries, then freeze.
    class Builder {
    public:
        explicit Builder(std::size_t n) : n_(n) {}

        /// Add v to entry (i, j). Defined inline: assembly pushes hundreds
        /// of thousands of triplets per build, so the push must not cost a
        /// call.
        void add(std::size_t i, std::size_t j, double v) {
            assert(i < n_ && j < n_);
            triplets_.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), v});
        }

        /// Add v to (i,i), (j,j) and -v to (i,j), (j,i): one spring of
        /// weight v between nodes i and j (the Laplacian stamp).
        void add_spring(std::size_t i, std::size_t j, double v) {
            add(i, i, v);
            add(j, j, v);
            add(i, j, -v);
            add(j, i, -v);
        }

        /// Add v to the diagonal entry (i,i): a spring to a fixed location.
        void add_anchor(std::size_t i, double v) { add(i, i, v); }

        /// Reserve a refreshable anchor slot on diagonal i (at most one per
        /// row). The built matrix records exactly where this triplet lands
        /// in the duplicate-merge summation order, so set_anchor can later
        /// swap in a new weight and refold the diagonal bit-identically to
        /// a full rebuild with that weight.
        void add_anchor_slot(std::size_t i) {
            assert(i < n_);
            triplets_.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), 0.0,
                                 /*anchor_slot=*/true});
        }

        /// Append another builder's entries (in their original order) —
        /// used to stitch per-chunk assemblies back together so a parallel
        /// build produces the same triplet sequence as a serial one.
        void merge(Builder&& other);

        SparseMatrix build() &&;

    private:
        friend class SparseMatrix;
        // 24 bytes, not 32: narrow row/col indices keep the sort (the
        // hottest part of assembly) streaming 25% less data. The sort's
        // comparison sequence — and with it the unstable permutation that
        // fixes the duplicate fold order — depends only on the compared
        // keys, so shrinking the element changes nothing downstream.
        struct Triplet {
            std::uint32_t row;
            std::uint32_t col;
            double value;
            bool anchor_slot = false;
        };
        std::size_t n_;
        std::vector<Triplet> triplets_;
    };

    /// Empty 0x0 matrix; assign from Builder::build() to populate.
    SparseMatrix() = default;

    std::size_t size() const { return n_; }

    /// Stored (merged) entries — the per-iteration SpMV work, and the figure
    /// the kernel microbenchmarks normalize by.
    std::size_t nonzeros() const { return val_.size(); }

    /// y = A x. Parallelized over row ranges (per-row sums are serial, so
    /// the result is bit-identical for any thread count).
    void multiply(std::span<const double> x, std::span<double> y) const;

    /// Fused y = A x with xy[i] = x[i] * y[i] computed in the same parallel
    /// pass. The caller's serial left-fold of xy then equals dot(x, y)
    /// bit-for-bit (identical multiplies, identical add order; the build
    /// targets baseline x86-64, so no FMA contraction can merge them), and
    /// the extra passes re-reading x and y vanish.
    void multiply_dot(std::span<const double> x, std::span<double> y,
                      std::span<double> xy) const;

    /// Fused CG setup pass: r = b - A x and rr[i] = r[i] * r[i] in one
    /// sweep. Each element sees exactly the arithmetic of multiply()
    /// followed by the two-op residual pass, so the result — and the serial
    /// fold of rr — is bit-identical to the unfused sequence.
    void multiply_residual(std::span<const double> x, std::span<const double> b,
                           std::span<double> r, std::span<double> rr) const;

    /// multiply_dot plus the serial left-fold of xy, returned. When the
    /// row loop would run on parallel_for's serial fast path anyway, the
    /// fold is accumulated inline in row order — the same products added in
    /// the same sequence, without ever touching the xy array — so the value
    /// (and y) is bit-identical to multiply_dot followed by a serial fold
    /// at any thread count.
    double multiply_dot_fold(std::span<const double> x, std::span<double> y,
                             std::span<double> xy) const;

    /// multiply_residual plus the serial left-fold of rr, returned; same
    /// serial-path fusion (and the same bit-identity argument) as
    /// multiply_dot_fold.
    double multiply_residual_fold(std::span<const double> x, std::span<const double> b,
                                  std::span<double> r, std::span<double> rr) const;

    /// Dual right-hand-side multiply_dot_fold: one sweep over the matrix
    /// entries serves two independent vectors, so the val_/col_ stream —
    /// the bandwidth that bounds the solver — is fetched once instead of
    /// twice. Each side keeps its own accumulator and folds its own
    /// products in the identical ascending order, so y1/fold1 (and
    /// y2/fold2) are bit-for-bit what two separate multiply_dot_fold calls
    /// would produce.
    void multiply_dot_fold2(std::span<const double> x1, std::span<double> y1,
                            std::span<double> xy1, std::span<const double> x2,
                            std::span<double> y2, std::span<double> xy2, double& fold1,
                            double& fold2) const;

    double diagonal(std::size_t i) const { return diag_[i]; }

    /// True when row i has an explicit (i, i) entry — required before
    /// set_diagonal. Reserve the slot with add_anchor(i, 0.0) at build time.
    bool has_diagonal_entry(std::size_t i) const { return diag_pos_[i] != kNoEntry; }

    /// Overwrite the (i, i) entry with `value` wholesale. Note this does
    /// NOT reproduce a rebuild's rounding when the diagonal has multiple
    /// contributions — use an anchor slot + set_anchor for that.
    void set_diagonal(std::size_t i, double value);

    /// True when add_anchor_slot(i) reserved a refreshable slot on row i.
    bool has_anchor_slot(std::size_t i) const { return anchor_slot_[i] != 0; }

    /// Set the anchor-slot weight on diagonal i to `w` and refold the
    /// (i, i) entry. This is the incremental update the placer's per-round
    /// Laplacian hoist relies on: between partitioning rounds only the
    /// anchor weights change, so the connectivity triplets are built and
    /// sorted once. Because std::sort is unstable, the slot's triplet can
    /// land anywhere among the duplicates summed into (i, i); build()
    /// records the fold prefix before the slot and the values after it, so
    /// the refreshed sum is bit-identical to re-assembling every triplet
    /// with the new weight.
    void set_anchor(std::size_t i, double w);

private:
    static constexpr std::uint32_t kNoEntry = static_cast<std::uint32_t>(-1);

    // Index arrays are uint32, not size_t: the SpMV inner loop is bound by
    // the val_/col_ stream bandwidth (the x gather stays L2-resident), so
    // halving the index bytes is a direct throughput win that touches no
    // floating-point value or summation order. 2^32 entries is far beyond
    // any placement Laplacian this solver sees.
    std::size_t n_ = 0;
    std::vector<std::uint32_t> row_start_;  // n_ + 1 entries
    std::vector<std::uint32_t> col_;
    std::vector<double> val_;
    std::vector<double> diag_;
    std::vector<std::uint32_t> diag_pos_;   // index into val_, kNoEntry if absent
    // Anchor-slot refold data (see set_anchor): the left-fold of the
    // duplicate values summed into (i, i) before the slot's triplet, and
    // the values after it in summation order (CSR layout).
    std::vector<char> anchor_slot_;
    std::vector<double> anchor_prefix_;
    std::vector<std::uint32_t> anchor_tail_start_;  // n_ + 1 entries
    std::vector<double> anchor_tail_vals_;
};

/// Result of a conjugate-gradient solve.
struct CgResult {
    std::size_t iterations = 0;
    double residual_norm = 0.0;  // ||b - A x|| at exit
    bool converged = false;
    bool budget_exhausted = false;  // the StageBudget fired before convergence
};

/// Reusable CG solve vectors (residual, preconditioned residual, search
/// direction, A*p, and the fused elementwise-product scratch). The placer
/// calls CG once per axis per partitioning round; keeping one workspace per
/// axis across rounds makes the steady-state solve allocation-free.
/// Not thread-safe — concurrent solves need their own workspace each.
struct CgWorkspace {
    std::vector<double> r, z, p, ap, prod;
};

/// Jacobi-preconditioned conjugate gradient. `x` carries the initial guess
/// in and the solution out. Stops when ||r|| <= tol * max(1, ||b||), after
/// max_iters iterations, or — best-effort, with the partial iterate left in
/// `x` — when the optional `budget` exhausts.
///
/// The SpMV, dot-product and vector-update kernels are parallelized over
/// fixed-grain row ranges with ordered reductions, so the iterates (and the
/// converged solution) are bit-identical for any LILY_THREADS value. The
/// scalar reductions CG steers by are serial left-folds over a product
/// array filled inside the fused parallel passes — the same values in the
/// same order as a standalone dot product, without the extra vector reads.
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, CgWorkspace& ws, double tol = 1e-10,
                            std::size_t max_iters = 10'000, StageBudget* budget = nullptr);

/// Convenience overload with a throwaway workspace (one-shot callers).
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol = 1e-10,
                            std::size_t max_iters = 10'000, StageBudget* budget = nullptr);

/// Two conjugate-gradient solves against the same matrix, run in lockstep:
/// each iteration performs one dual-RHS SpMV (multiply_dot_fold2) so the
/// matrix is streamed once for both systems — the placer's x/y axis solves
/// share their Laplacian, which makes this the natural shape. The two
/// solves are numerically independent: every per-axis scalar, iterate and
/// stopping decision is computed exactly as in conjugate_gradient, so each
/// returned solution is bit-identical to solving the axes one after the
/// other. When one side converges (or fails) first, the other continues
/// alone on the single-RHS kernel. A shared budget is ticked once per
/// still-active side per iteration — the same total consumption as two
/// sequential solves, interleaved.
std::pair<CgResult, CgResult> conjugate_gradient_pair(
    const SparseMatrix& a, std::span<const double> b1, std::span<double> x1, CgWorkspace& ws1,
    std::span<const double> b2, std::span<double> x2, CgWorkspace& ws2, double tol = 1e-10,
    std::size_t max_iters = 10'000, StageBudget* budget = nullptr);

}  // namespace lily
