// Sparse symmetric positive-definite linear algebra for quadratic placement.
// GORDIAN-style global placement minimizes sum_e w_e (x_i - x_j)^2 with some
// nodes (pads) fixed, which reduces to solving A x = b where A is the
// weighted graph Laplacian restricted to movable nodes. A is symmetric
// positive definite whenever every connected component touches a fixed node,
// so a (Jacobi-preconditioned) conjugate gradient solver is the right tool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/budget.hpp"

namespace lily {

/// Row-compressed symmetric sparse matrix built from coordinate triplets.
/// Both (i,j) and (j,i) entries must be added by the builder; duplicates are
/// summed. Only the pattern actually added is stored.
class SparseMatrix {
public:
    /// Incremental builder: accumulate coordinate entries, then freeze.
    class Builder {
    public:
        explicit Builder(std::size_t n) : n_(n) {}

        /// Add v to entry (i, j).
        void add(std::size_t i, std::size_t j, double v);

        /// Add v to (i,i), (j,j) and -v to (i,j), (j,i): one spring of
        /// weight v between nodes i and j (the Laplacian stamp).
        void add_spring(std::size_t i, std::size_t j, double v);

        /// Add v to the diagonal entry (i,i): a spring to a fixed location.
        void add_anchor(std::size_t i, double v) { add(i, i, v); }

        SparseMatrix build() &&;

    private:
        friend class SparseMatrix;
        struct Triplet {
            std::size_t row;
            std::size_t col;
            double value;
        };
        std::size_t n_;
        std::vector<Triplet> triplets_;
    };

    std::size_t size() const { return n_; }

    /// y = A x.
    void multiply(std::span<const double> x, std::span<double> y) const;

    double diagonal(std::size_t i) const { return diag_[i]; }

private:
    SparseMatrix() = default;

    std::size_t n_ = 0;
    std::vector<std::size_t> row_start_;  // n_ + 1 entries
    std::vector<std::size_t> col_;
    std::vector<double> val_;
    std::vector<double> diag_;
};

/// Result of a conjugate-gradient solve.
struct CgResult {
    std::size_t iterations = 0;
    double residual_norm = 0.0;  // ||b - A x|| at exit
    bool converged = false;
    bool budget_exhausted = false;  // the StageBudget fired before convergence
};

/// Jacobi-preconditioned conjugate gradient. `x` carries the initial guess
/// in and the solution out. Stops when ||r|| <= tol * max(1, ||b||), after
/// max_iters iterations, or — best-effort, with the partial iterate left in
/// `x` — when the optional `budget` exhausts.
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol = 1e-10,
                            std::size_t max_iters = 10'000, StageBudget* budget = nullptr);

}  // namespace lily
