// Sparse symmetric positive-definite linear algebra for quadratic placement.
// GORDIAN-style global placement minimizes sum_e w_e (x_i - x_j)^2 with some
// nodes (pads) fixed, which reduces to solving A x = b where A is the
// weighted graph Laplacian restricted to movable nodes. A is symmetric
// positive definite whenever every connected component touches a fixed node,
// so a (Jacobi-preconditioned) conjugate gradient solver is the right tool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/budget.hpp"

namespace lily {

/// Row-compressed symmetric sparse matrix built from coordinate triplets.
/// Both (i,j) and (j,i) entries must be added by the builder; duplicates are
/// summed. Only the pattern actually added is stored.
class SparseMatrix {
public:
    /// Incremental builder: accumulate coordinate entries, then freeze.
    class Builder {
    public:
        explicit Builder(std::size_t n) : n_(n) {}

        /// Add v to entry (i, j).
        void add(std::size_t i, std::size_t j, double v);

        /// Add v to (i,i), (j,j) and -v to (i,j), (j,i): one spring of
        /// weight v between nodes i and j (the Laplacian stamp).
        void add_spring(std::size_t i, std::size_t j, double v);

        /// Add v to the diagonal entry (i,i): a spring to a fixed location.
        void add_anchor(std::size_t i, double v) { add(i, i, v); }

        /// Reserve a refreshable anchor slot on diagonal i (at most one per
        /// row). The built matrix records exactly where this triplet lands
        /// in the duplicate-merge summation order, so set_anchor can later
        /// swap in a new weight and refold the diagonal bit-identically to
        /// a full rebuild with that weight.
        void add_anchor_slot(std::size_t i);

        /// Append another builder's entries (in their original order) —
        /// used to stitch per-chunk assemblies back together so a parallel
        /// build produces the same triplet sequence as a serial one.
        void merge(Builder&& other);

        SparseMatrix build() &&;

    private:
        friend class SparseMatrix;
        struct Triplet {
            std::size_t row;
            std::size_t col;
            double value;
            bool anchor_slot = false;
        };
        std::size_t n_;
        std::vector<Triplet> triplets_;
    };

    /// Empty 0x0 matrix; assign from Builder::build() to populate.
    SparseMatrix() = default;

    std::size_t size() const { return n_; }

    /// y = A x. Parallelized over row ranges (per-row sums are serial, so
    /// the result is bit-identical for any thread count).
    void multiply(std::span<const double> x, std::span<double> y) const;

    double diagonal(std::size_t i) const { return diag_[i]; }

    /// True when row i has an explicit (i, i) entry — required before
    /// set_diagonal. Reserve the slot with add_anchor(i, 0.0) at build time.
    bool has_diagonal_entry(std::size_t i) const { return diag_pos_[i] != kNoEntry; }

    /// Overwrite the (i, i) entry with `value` wholesale. Note this does
    /// NOT reproduce a rebuild's rounding when the diagonal has multiple
    /// contributions — use an anchor slot + set_anchor for that.
    void set_diagonal(std::size_t i, double value);

    /// True when add_anchor_slot(i) reserved a refreshable slot on row i.
    bool has_anchor_slot(std::size_t i) const { return anchor_slot_[i] != 0; }

    /// Set the anchor-slot weight on diagonal i to `w` and refold the
    /// (i, i) entry. This is the incremental update the placer's per-round
    /// Laplacian hoist relies on: between partitioning rounds only the
    /// anchor weights change, so the connectivity triplets are built and
    /// sorted once. Because std::sort is unstable, the slot's triplet can
    /// land anywhere among the duplicates summed into (i, i); build()
    /// records the fold prefix before the slot and the values after it, so
    /// the refreshed sum is bit-identical to re-assembling every triplet
    /// with the new weight.
    void set_anchor(std::size_t i, double w);

private:
    static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

    std::size_t n_ = 0;
    std::vector<std::size_t> row_start_;  // n_ + 1 entries
    std::vector<std::size_t> col_;
    std::vector<double> val_;
    std::vector<double> diag_;
    std::vector<std::size_t> diag_pos_;   // index into val_, kNoEntry if absent
    // Anchor-slot refold data (see set_anchor): the left-fold of the
    // duplicate values summed into (i, i) before the slot's triplet, and
    // the values after it in summation order (CSR layout).
    std::vector<char> anchor_slot_;
    std::vector<double> anchor_prefix_;
    std::vector<std::size_t> anchor_tail_start_;  // n_ + 1 entries
    std::vector<double> anchor_tail_vals_;
};

/// Result of a conjugate-gradient solve.
struct CgResult {
    std::size_t iterations = 0;
    double residual_norm = 0.0;  // ||b - A x|| at exit
    bool converged = false;
    bool budget_exhausted = false;  // the StageBudget fired before convergence
};

/// Jacobi-preconditioned conjugate gradient. `x` carries the initial guess
/// in and the solution out. Stops when ||r|| <= tol * max(1, ||b||), after
/// max_iters iterations, or — best-effort, with the partial iterate left in
/// `x` — when the optional `budget` exhausts.
///
/// The SpMV, dot-product and vector-update kernels are parallelized over
/// fixed-grain row ranges with ordered reductions, so the iterates (and the
/// converged solution) are bit-identical for any LILY_THREADS value.
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, double tol = 1e-10,
                            std::size_t max_iters = 10'000, StageBudget* budget = nullptr);

}  // namespace lily
