// Artifact versioning for the incremental (ECO) pipeline.
//
// Every stage artifact the pipeline owns — the source network, the subject
// graph, the mapped netlist, placements, routes, timing — carries a
// monotonically increasing Version. A consumer records the producer version
// it was built from; the PipelineChecker cross-validates the chain so a
// stale artifact (e.g. a mapped netlist built against an older subject
// graph) is rejected instead of silently mixing generations. This unifies
// the ad-hoc `topo_epoch`/`rect_epoch` counters the mapper's caches grew in
// the parallelization work: one Version type, one bump discipline.
#pragma once

#include <cstdint>

namespace lily {

using Version = std::uint64_t;

/// Versions start at 1 so 0 can mean "never built".
inline constexpr Version kNeverBuilt = 0;

/// A monotonically increasing counter with value semantics: copying an
/// artifact copies its version (the copy IS that generation); bumping
/// advances to a new generation.
class VersionCounter {
public:
    Version value() const { return v_; }
    Version bump() { return ++v_; }

private:
    Version v_ = 1;
};

}  // namespace lily
