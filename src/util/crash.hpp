// Async-signal-safe crash reporting for sandboxed flow workers.
//
// A worker process that segfaults, aborts, or hits a fatal bus/FP error
// must still tell its supervisor *where* it died: which pipeline stage was
// active and which fault spec (if any) was injected. The handler installed
// here does the only things legal inside a fatal-signal context — format
// into a fixed buffer with no allocation and write(2) to a pre-registered
// fd — then _exit(kCrashExitCode) so the parent sees a deterministic exit
// instead of re-raised-signal races. Installing it deliberately replaces
// any sanitizer's own fatal-signal handler so crash classification is
// identical in sanitized and plain builds.
#pragma once

#include <string_view>

namespace lily {

/// The exit code the crash handler dies with (chosen clear of shell and
/// sanitizer conventions). A worker exiting with this code crashed after
/// writing a "CRASH sig=N stage=... fault=..." line to the report fd.
inline constexpr int kCrashExitCode = 97;

/// Install handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL that write a
/// one-line crash report to `report_fd` and _exit(kCrashExitCode). The
/// active fault spec is snapshotted into a static buffer *now* (the
/// handler cannot call fault_spec(), which locks); re-install after
/// changing the spec if the report should reflect it.
void install_crash_reporter(int report_fd, std::string_view fault_spec);

/// Record the pipeline stage the process is currently executing, for crash
/// attribution. `stage` must be a string literal or otherwise outlive any
/// crash (the handler reads the pointer asynchronously).
void crash_set_stage(const char* stage);

}  // namespace lily
