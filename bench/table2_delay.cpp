// Reproduces Table 2 of the paper: per-circuit total instance area and
// longest path delay (wire delays included, computed after placement),
// baseline vs Lily, both mapping in timing mode. Expected shape: Lily is
// ~8% faster on average, with occasional losses (the paper's C499).
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(1.0);
    const auto names = table2_names();

    FlowOptions opts;
    opts.objective = MapObjective::Delay;

    std::printf("Table 2: timing-mode mapping, 1u-scaled delays (ns)\n");
    std::printf("%-8s | %10s %10s | %10s %10s | %8s\n", "Ex.", "MIS cell", "MIS delay",
                "Lily cell", "Lily delay", "delay%");
    bench::print_rule(72);

    bench::RatioTracker delay;
    for (const Benchmark& b : suite) {
        if (std::find(names.begin(), names.end(), b.name) == names.end()) continue;
        const FlowResult base = run_baseline_flow(b.network, lib, opts);
        const FlowResult lily = run_lily_flow(b.network, lib, opts);
        delay.add(lily.metrics.critical_delay, base.metrics.critical_delay);
        std::printf("%-8s | %10.3f %10.2f | %10.3f %10.2f | %+7.1f%%\n", b.name.c_str(),
                    base.metrics.cell_area_mm2(), base.metrics.critical_delay,
                    lily.metrics.cell_area_mm2(), lily.metrics.critical_delay,
                    (lily.metrics.critical_delay / base.metrics.critical_delay - 1.0) * 100.0);
    }
    bench::print_rule(72);
    std::printf("geomean Lily/MIS delay: %+.1f%%\n", delay.percent());
    std::printf("(paper: ~-8%% average delay, occasional per-circuit losses)\n");
    return 0;
}
