// Section 5 remedy: "our dynamic wire length estimation procedure is not
// always accurate (as seen by poor results for misex1 ...). In such cases,
// we could repeat the mapping with reduced wire cost weight to obtain
// better solutions." This bench compares plain Lily against the adaptive
// retry on the circuits where plain Lily loses to the baseline.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(1.0);

    std::printf("Adaptive wire-weight retry (area mode)\n");
    std::printf("%-8s | %10s | %10s %7s | %10s %7s\n", "Ex.", "MIS wire", "Lily wire",
                "vs MIS", "adaptive", "vs MIS");
    bench::print_rule(66);

    bench::RatioTracker plain, adaptive;
    for (const Benchmark& b : suite) {
        const FlowResult base = run_baseline_flow(b.network, lib);
        const FlowResult lily = run_lily_flow(b.network, lib);
        const FlowResult tuned =
            run_lily_flow_adaptive(b.network, lib, {}, base.metrics.wirelength);
        plain.add(lily.metrics.wirelength, base.metrics.wirelength);
        adaptive.add(tuned.metrics.wirelength, base.metrics.wirelength);
        std::printf("%-8s | %10.1f | %10.1f %+6.1f%% | %10.1f %+6.1f%%\n", b.name.c_str(),
                    base.metrics.wirelength, lily.metrics.wirelength,
                    (lily.metrics.wirelength / base.metrics.wirelength - 1.0) * 100.0,
                    tuned.metrics.wirelength,
                    (tuned.metrics.wirelength / base.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(66);
    std::printf("geomean wire vs MIS: plain %+.1f%%, adaptive %+.1f%%\n", plain.percent(),
                adaptive.percent());
    std::printf("(the adaptive column should never be worse than the plain column)\n");
    return 0;
}
