// Reproduces Table 1 of the paper: per-circuit comparison of total instance
// (cell) area, final chip area and total interconnection length after
// placement and routing, MIS2.1-style baseline vs Lily, both in area mode.
//
// Expected shape (paper averages): Lily trades slightly larger cell area
// (~+2%) for smaller chip area (~-5%) and shorter interconnect (~-7%).
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(1.0);

    std::printf("Table 1: area-mode mapping, %s library (%zu gates)\n", lib.name().c_str(),
                lib.size());
    std::printf("%-8s | %10s %10s %10s | %10s %10s %10s | %7s %7s\n", "Ex.", "MIS cell",
                "MIS chip", "MIS wire", "Lily cell", "Lily chip", "Lily wire", "chip%",
                "wire%");
    bench::print_rule(104);

    bench::RatioTracker cell, chip, wire;
    for (const Benchmark& b : suite) {
        const FlowResult base = run_baseline_flow(b.network, lib);
        const FlowResult lily = run_lily_flow(b.network, lib);
        cell.add(lily.metrics.cell_area, base.metrics.cell_area);
        chip.add(lily.metrics.chip_area, base.metrics.chip_area);
        wire.add(lily.metrics.wirelength, base.metrics.wirelength);
        std::printf("%-8s | %10.3f %10.3f %10.1f | %10.3f %10.3f %10.1f | %+6.1f%% %+6.1f%%\n",
                    b.name.c_str(), base.metrics.cell_area_mm2(), base.metrics.chip_area_mm2(),
                    base.metrics.wirelength_mm(), lily.metrics.cell_area_mm2(),
                    lily.metrics.chip_area_mm2(), lily.metrics.wirelength_mm(),
                    (lily.metrics.chip_area / base.metrics.chip_area - 1.0) * 100.0,
                    (lily.metrics.wirelength / base.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(104);
    std::printf("geomean Lily/MIS: cell %+.1f%%  chip %+.1f%%  wire %+.1f%%\n", cell.percent(),
                chip.percent(), wire.percent());
    std::printf("(paper: cell ~+1.9%%, chip ~-5%%, wire ~-7%% on the MCNC/ISCAS suite)\n");
    return 0;
}
