// Hot-path kernel microbenchmarks: the four inner loops the CSR/arena
// flattening targets, measured in isolation so a regression in one kernel
// is visible without re-profiling the whole flow.
//
//   spmv           Jacobi-CG's fused SpMV+elementwise-product over the
//                  CSR-stored grid Laplacian (SparseMatrix::multiply_dot)
//   matcher_walk   pattern matching at every gate node of a decomposed
//                  subject graph through the frozen SubjectTopology, with
//                  the pooled in-place matches_at overload
//   rect_assembly  true-fanout rectangle assembly: per node, gather fanout
//                  positions from the CSR view, bound them, then take the
//                  Manhattan median of the rectangle set (the Lily wire
//                  model's geometric core)
//   dp_scan        the full Lily DP candidate scan (LilyMapper::map on the
//                  same subject graph, single thread)
//
// Each kernel reports best-of-rep wall milliseconds per sweep plus the
// heap-allocation delta of a *warmed* sweep — the pooled-scratch design
// makes the steady-state matcher and rectangle sweeps allocation-free, and
// this harness is where that claim is checked numerically.
//
// Usage: kernels [--quick] [--out=BENCH_kernels.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "match/matcher.hpp"
#include "subject/decompose.hpp"
#include "util/alloc_stats.hpp"
#include "util/geometry.hpp"
#include "util/parallel.hpp"
#include "util/sparse.hpp"

using namespace lily;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct KernelReport {
    std::string name;
    std::size_t work_items = 0;   // rows, nodes, ... per sweep
    double best_ms = 0.0;         // best-of-reps wall time per sweep
    std::uint64_t warm_allocs = 0;  // operator-new calls in one warmed sweep
    double checksum = 0.0;        // defeats DCE; also a change detector
};

/// Time `sweep()` best-of-`reps` after one untimed warmup, and capture the
/// allocation count of the final (fully warmed) sweep.
template <typename F>
KernelReport run_kernel(const std::string& name, std::size_t work_items, int reps,
                        F&& sweep) {
    KernelReport rep;
    rep.name = name;
    rep.work_items = work_items;
    rep.checksum = sweep();  // warmup: grows every pool to steady state
    rep.best_ms = 1e300;
    for (int i = 0; i < reps; ++i) {
        const AllocStats a0 = alloc_stats_snapshot();
        const Clock::time_point t0 = Clock::now();
        rep.checksum = sweep();
        rep.best_ms = std::min(rep.best_ms, ms_since(t0));
        rep.warm_allocs = alloc_stats_snapshot().count - a0.count;
    }
    return rep;
}

/// 2D-grid Laplacian with anchored corners: the placement CG's matrix shape.
SparseMatrix make_grid_laplacian(std::size_t side) {
    const std::size_t n = side * side;
    SparseMatrix::Builder b(n);
    for (std::size_t r = 0; r < side; ++r) {
        for (std::size_t c = 0; c < side; ++c) {
            const std::size_t i = r * side + c;
            if (c + 1 < side) b.add_spring(i, i + 1, 1.0);
            if (r + 1 < side) b.add_spring(i, i + side, 1.0);
        }
    }
    b.add_anchor(0, 4.0);
    b.add_anchor(n - 1, 4.0);
    return std::move(b).build();
}

KernelReport bench_spmv(std::size_t side, int reps) {
    const SparseMatrix a = make_grid_laplacian(side);
    const std::size_t n = a.size();
    std::vector<double> x(n), y(n), xy(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 + 1e-3 * static_cast<double>(i % 97);
    return run_kernel("spmv", n, reps, [&] {
        a.multiply_dot(x, y, xy);
        double acc = 0.0;
        for (double v : xy) acc += v;
        return acc;
    });
}

KernelReport bench_matcher_walk(const SubjectGraph& g, const Matcher& matcher, int reps) {
    MatchScratch scratch;
    std::vector<Match> pool;
    return run_kernel("matcher_walk", g.size(), reps, [&] {
        std::size_t total = 0;
        for (SubjectId v = 0; v < g.size(); ++v) {
            total += matcher.matches_at(g, v, scratch, pool);
        }
        return static_cast<double>(total);
    });
}

KernelReport bench_rect_assembly(const SubjectGraph& g, int reps) {
    const SubjectTopology& t = g.topology();
    // Deterministic synthetic placement: what the inchoate placer would
    // hand the wire model.
    std::vector<Point> pos(g.size());
    for (SubjectId v = 0; v < g.size(); ++v) {
        pos[v] = {static_cast<double>((v * 37) % 101), static_cast<double>((v * 53) % 89)};
    }
    std::vector<Point> pts;
    std::vector<Rect> rects;
    MedianScratch median;
    return run_kernel("rect_assembly", g.size(), reps, [&] {
        double acc = 0.0;
        rects.clear();
        for (SubjectId v = 0; v < g.size(); ++v) {
            const std::span<const SubjectId> fo = t.fanouts_of(v);
            if (fo.empty()) continue;
            pts.clear();
            for (SubjectId u : fo) pts.push_back(pos[u]);
            rects.push_back(bounding_box(pts));
            if (rects.size() == 16) {
                const Point m = manhattan_median_of_rects(rects, median);
                acc += m.x + m.y;
                rects.clear();
            }
        }
        if (!rects.empty()) {
            const Point m = manhattan_median_of_rects(rects, median);
            acc += m.x + m.y;
        }
        return acc;
    });
}

KernelReport bench_dp_scan(const SubjectGraph& g, const Library& lib, int reps) {
    const LilyMapper mapper(lib);
    // The DP allocates its solution arrays per map() call by design; the
    // interesting number here is the wall time, not the allocation delta.
    return run_kernel("dp_scan", g.size(), reps, [&] {
        const LilyResult res = mapper.map(g);
        return res.total_area + res.estimated_wirelength;
    });
}

std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else {
            std::fprintf(stderr, "usage: kernels [--quick] [--out=FILE]\n");
            return 2;
        }
    }

    // Single-thread numbers: kernel changes should be visible without the
    // scheduler in the frame. (The flow-level harness covers scaling.)
    ThreadPool::global().resize(1);

    const int reps = quick ? 3 : 8;
    const std::size_t grid_side = quick ? 96 : 256;
    const unsigned gates = quick ? 300 : 1200;

    const Library lib = load_msu_big();
    const Network net =
        make_control_logic(gates / 8 + 8, gates / 16 + 4, gates, 0xBEEF, "kernels");
    const DecomposeResult dec = decompose(net);
    const SubjectGraph& g = dec.graph;
    const Matcher matcher(lib);
    g.topology();  // freeze the CSR view outside the timed regions

    std::vector<KernelReport> reports;
    reports.push_back(bench_spmv(grid_side, reps));
    reports.push_back(bench_matcher_walk(g, matcher, reps));
    reports.push_back(bench_rect_assembly(g, reps));
    reports.push_back(bench_dp_scan(g, lib, reps));

    bool ok = true;
    for (const KernelReport& r : reports) {
        std::fprintf(stderr, "%-14s %7zu items  %9.3f ms/sweep  %6llu allocs warm\n",
                     r.name.c_str(), r.work_items, r.best_ms,
                     static_cast<unsigned long long>(r.warm_allocs));
        // The pooled kernels must stay allocation-free once warmed; a few
        // stragglers are tolerated (stdio, one-off rehashes), a return to
        // per-node churn is not.
        if ((r.name == "matcher_walk" || r.name == "rect_assembly" || r.name == "spmv") &&
            r.warm_allocs > 16) {
            std::fprintf(stderr, "FAIL: %s allocated %llu times in a warmed sweep\n",
                         r.name.c_str(), static_cast<unsigned long long>(r.warm_allocs));
            ok = false;
        }
    }

    std::ostringstream os;
    os << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const KernelReport& r = reports[i];
        os << "    {\"name\": \"" << r.name << "\", \"work_items\": " << r.work_items
           << ", \"best_ms\": " << json_num(r.best_ms)
           << ", \"warm_allocs\": " << r.warm_allocs
           << ", \"checksum\": " << json_num(r.checksum) << "}"
           << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::ofstream f(out_path);
    f << os.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    return ok ? 0 : 1;
}
