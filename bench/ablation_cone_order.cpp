// Section 3.5 design choice: processing logic cones in the exit-line
// minimizing order vs primary output declaration order. Also reports the
// ordering objective itself (forward references into unmapped cones).
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "subject/cones.hpp"
#include "subject/decompose.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Cone-ordering ablation (area mode)\n");
    std::printf("%-8s | %8s %8s | %10s %10s | %7s\n", "Ex.", "fwd id", "fwd ord",
                "id wire", "ord wire", "wire%");
    bench::print_rule(66);

    bench::RatioTracker wire;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        const DecomposeResult sub = decompose(b.network);
        const auto cones = logic_cones(sub.graph);
        const auto matrix = exit_line_matrix(sub.graph, cones);
        std::vector<std::size_t> identity(cones.size());
        for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
        const auto ordered = order_cones(sub.graph, cones);
        const std::size_t fwd_id = ordering_cost(matrix, identity);
        const std::size_t fwd_ord = ordering_cost(matrix, ordered);

        FlowOptions with;
        with.lily.order_cones = true;
        FlowOptions without;
        without.lily.order_cones = false;
        const FlowResult f_with = run_lily_flow(b.network, lib, with);
        const FlowResult f_without = run_lily_flow(b.network, lib, without);
        wire.add(f_with.metrics.wirelength, f_without.metrics.wirelength);
        std::printf("%-8s | %8zu %8zu | %10.1f %10.1f | %+6.1f%%\n", b.name.c_str(), fwd_id,
                    fwd_ord, f_without.metrics.wirelength, f_with.metrics.wirelength,
                    (f_with.metrics.wirelength / f_without.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(66);
    std::printf("geomean ordered/unordered wire: %+.1f%% (forward references never rise)\n",
                wire.percent());
    return 0;
}
