// Reproduces Figure 1.1(b): the value of a layout-oriented decomposition.
// Fanins that are spatially close should enter the decomposition tree at
// topologically close points; a placement-oblivious decomposition can
// interleave far-apart signals and deny the mapper the option of splitting
// one big match into smaller, better-placed ones.
//
// Protocol: decompose balanced -> place -> harvest node positions ->
// re-decompose with the proximity-driven tree builder -> Lily-map both
// subject graphs against the same pads and compare routed wirelength.
#include <cstdio>
#include <unordered_map>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "subject/decompose.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    std::printf("Figure 1.1(b): balanced vs layout-oriented (proximity) decomposition\n");
    std::printf("%-8s | %10s %10s | %10s %10s | %7s\n", "Ex.", "bal gates", "bal wire",
                "prox gate", "prox wire", "wire%");
    bench::print_rule(70);

    bench::RatioTracker wire;
    const auto suite = paper_suite(0.5);
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 600) continue;  // keep the bench brisk

        // Phase 1: balanced decomposition, placed; positions per source node.
        const DecomposeResult balanced = decompose(b.network);
        LilyMapper mapper(lib);
        const LilyResult bal_res = mapper.map(balanced.graph);
        FlowOptions fopts;
        const FlowResult bal_flow = run_backend(
            bal_res.netlist, lib, fopts,
            PadsInRegion{bal_res.pad_positions, bal_res.inchoate_placement.region});

        // Harvest: each source node's position = its signal's placement.
        DecomposeOptions prox_opts;
        prox_opts.shape = TreeShape::Proximity;
        prox_opts.source_positions.resize(b.network.node_count());
        const SubjectPlacementView view = make_placement_view(balanced.graph);
        // Gate signals take their placed position; primary inputs take their
        // pad position (their signal is a subject Input, not a cell).
        std::unordered_map<SubjectId, Point> pi_pos;
        for (std::size_t i = 0; i < balanced.graph.inputs().size(); ++i) {
            pi_pos[balanced.graph.inputs()[i]] =
                bal_res.pad_positions[view.pad_of_input(i)];
        }
        for (NodeId n = 0; n < b.network.node_count(); ++n) {
            const SubjectId sig = balanced.signal_of[n];
            const std::size_t cell = view.cell_of[sig];
            if (cell != kNoCell) {
                prox_opts.source_positions[n] = bal_res.inchoate_placement.positions[cell];
            } else if (const auto it = pi_pos.find(sig); it != pi_pos.end()) {
                prox_opts.source_positions[n] = it->second;
            }
        }

        // Phase 2: proximity decomposition, same pads.
        const DecomposeResult prox = decompose(b.network, prox_opts);
        const LilyResult prox_res = mapper.map(prox.graph, {}, bal_res.pad_positions);
        const FlowResult prox_flow = run_backend(
            prox_res.netlist, lib, fopts,
            PadsInRegion{prox_res.pad_positions, prox_res.inchoate_placement.region});

        wire.add(prox_flow.metrics.wirelength, bal_flow.metrics.wirelength);
        std::printf("%-8s | %10zu %10.2f | %10zu %10.2f | %+6.1f%%\n", b.name.c_str(),
                    bal_flow.metrics.gate_count, bal_flow.metrics.wirelength,
                    prox_flow.metrics.gate_count, prox_flow.metrics.wirelength,
                    (prox_flow.metrics.wirelength / bal_flow.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(70);
    std::printf("geomean proximity/balanced wire: %+.1f%%\n", wire.percent());
    std::printf("shape: proximity decomposition should not lose, and wins where wide\n"
                "nodes have spatially clustered fanins.\n");
    return 0;
}
