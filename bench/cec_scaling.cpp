// CEC scaling harness: what does a formal verdict cost compared to the
// random-simulation spot check, and how much work does SAT sweeping save?
//
// For each workload (the example circuits plus synthetic control logic at a
// few sizes) the harness maps the network with the wire-blind baseline
// mapper, then checks mapped-vs-source three ways:
//
//   sim    equivalent_random_checked on 8 random blocks (the historical check)
//   prove  check_equivalence with SAT sweeping (the default prover setup)
//   nosweep  check_equivalence with sweeping disabled (ablation: how much
//            the simulation-guided merges shrink the per-output proofs)
//
// Emits BENCH_cec.json and exits non-zero unless every workload is Proven
// and simulation-clean — this is the CI regression gate for the verifier.
//
// Usage:
//   cec_scaling [--out=BENCH_cec.json] [--quick]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"
#include "verify/cec.hpp"

using namespace lily;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

struct Row {
    std::string name;
    std::size_t source_nodes = 0;
    std::size_t mapped_gates = 0;
    std::size_t aig_ands = 0;
    double sim_ms = 0.0;
    bool sim_equivalent = false;
    double prove_ms = 0.0;
    std::string prove_verdict;
    std::size_t merged_nodes = 0;
    std::size_t sat_calls = 0;
    std::size_t conflicts = 0;
    double nosweep_ms = 0.0;
    std::size_t nosweep_conflicts = 0;
};

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_cec.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: cec_scaling [--out=FILE] [--quick]\n");
            return 2;
        }
    }

    const Library lib = load_msu_big();

    // Workloads: every shipped example, then synthetic control logic of
    // growing size so the curve has more than toy points on it.
    std::vector<std::pair<std::string, Network>> workloads;
    const std::string dir = std::string(LILY_SOURCE_DIR) + "/examples/circuits/";
    for (const char* name : {"decoder3", "full_adder", "mux4", "parity8"}) {
        workloads.emplace_back(name, read_blif_file(dir + name + ".blif"));
    }
    const std::vector<unsigned> sizes =
        quick ? std::vector<unsigned>{120} : std::vector<unsigned>{120, 400};
    for (const unsigned gates : sizes) {
        const std::string name = "control_" + std::to_string(gates);
        workloads.emplace_back(
            name, make_control_logic(gates / 8 + 8, gates / 16 + 4, gates, 0xCEC, name));
    }

    std::vector<Row> rows;
    bool all_proven = true;
    bench::RatioTracker prove_over_sim;

    for (const auto& [name, net] : workloads) {
        Row row;
        row.name = name;
        row.source_nodes = net.node_count();

        const MapResult mapped = BaseMapper(lib).map(decompose(net).graph);
        row.mapped_gates = mapped.netlist.gate_count();
        const Network impl = mapped.netlist.to_network(lib);

        Clock::time_point t0 = Clock::now();
        const StatusOr<bool> sim = equivalent_random_checked(net, impl, 8, 0xCEC);
        row.sim_ms = ms_since(t0);
        if (!sim.is_ok()) {
            std::fprintf(stderr, "%s: sim check failed: %s\n", name.c_str(),
                         sim.status().to_string().c_str());
            return 1;
        }
        row.sim_equivalent = sim.value();

        t0 = Clock::now();
        const StatusOr<CecResult> prove = check_equivalence(net, impl);
        row.prove_ms = ms_since(t0);
        if (!prove.is_ok()) {
            std::fprintf(stderr, "%s: prover failed: %s\n", name.c_str(),
                         prove.status().to_string().c_str());
            return 1;
        }
        const CecResult& cec = prove.value();
        row.prove_verdict = to_string(cec.verdict);
        row.aig_ands = cec.stats.aig_and_nodes;
        row.merged_nodes = cec.stats.merged_nodes;
        row.sat_calls = cec.stats.sat_calls;
        row.conflicts = cec.stats.conflicts;

        // The ablation is budget-capped and skipped on the largest
        // workloads: monolithic per-output proofs blow up combinatorially
        // there (that blow-up is the point of the ablation), and an
        // Inconclusive verdict under a cap is an honest data point.
        if (row.aig_ands <= 4000) {
            CecOptions nosweep;
            nosweep.sweep = false;
            nosweep.output_conflict_budget = 20000;
            t0 = Clock::now();
            const StatusOr<CecResult> raw = check_equivalence(net, impl, nosweep);
            row.nosweep_ms = ms_since(t0);
            if (raw.is_ok()) row.nosweep_conflicts = raw.value().stats.conflicts;
        }

        const bool proven = cec.verdict == CecVerdict::Proven;
        all_proven = all_proven && proven && row.sim_equivalent;
        prove_over_sim.add(row.prove_ms, row.sim_ms);

        std::fprintf(stderr,
                     "%s: %zu nodes -> %zu gates, %zu AIG ands; sim %.2f ms (%s), "
                     "prove %.2f ms (%s, %zu/%zu merged, %zu SAT calls, %zu conflicts), "
                     "no-sweep %.2f ms (%zu conflicts)\n",
                     name.c_str(), row.source_nodes, row.mapped_gates, row.aig_ands,
                     row.sim_ms, row.sim_equivalent ? "clean" : "MISCOMPARE", row.prove_ms,
                     row.prove_verdict.c_str(), row.merged_nodes, row.aig_ands,
                     row.sat_calls, row.conflicts, row.nosweep_ms, row.nosweep_conflicts);
        rows.push_back(row);
    }

    std::ostringstream os;
    os << "{\n";
    os << "  \"all_proven\": " << (all_proven ? "true" : "false") << ",\n";
    os << "  \"geomean_prove_over_sim_time\": " << json_num(prove_over_sim.geomean())
       << ",\n";
    os << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        os << "  {\n";
        os << "    \"name\": \"" << r.name << "\",\n";
        os << "    \"source_nodes\": " << r.source_nodes << ",\n";
        os << "    \"mapped_gates\": " << r.mapped_gates << ",\n";
        os << "    \"aig_and_nodes\": " << r.aig_ands << ",\n";
        os << "    \"sim\": {\"ms\": " << json_num(r.sim_ms)
           << ", \"equivalent\": " << (r.sim_equivalent ? "true" : "false") << "},\n";
        os << "    \"prove\": {\"ms\": " << json_num(r.prove_ms) << ", \"verdict\": \""
           << r.prove_verdict << "\", \"merged_nodes\": " << r.merged_nodes
           << ", \"sat_calls\": " << r.sat_calls << ", \"conflicts\": " << r.conflicts
           << "},\n";
        os << "    \"prove_nosweep\": {\"ms\": " << json_num(r.nosweep_ms)
           << ", \"conflicts\": " << r.nosweep_conflicts << "}\n";
        os << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";

    std::ofstream f(out_path);
    f << os.str();
    f.close();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    if (!all_proven) {
        std::fprintf(stderr, "FAIL: a mapped workload was not proven equivalent\n");
        return 1;
    }
    return 0;
}
