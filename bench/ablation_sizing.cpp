// Extension ablation: load-driven gate sizing after placement (the
// MIS2.2-style load handling the paper's Section 5 points to). Every
// mapped instance may swap to a functionally identical drive variant; the
// pass minimizes local stage delay under measured loads.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "sta/gate_sizing.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Gate-sizing ablation (timing mode): drive selection under real loads\n");
    std::printf("%-8s | %9s | %9s %6s | %7s\n", "Ex.", "delay", "sized", "swaps", "delay%");
    bench::print_rule(52);

    bench::RatioTracker delay;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 700) continue;
        FlowOptions opts;
        opts.objective = MapObjective::Delay;
        FlowResult flow = run_lily_flow(b.network, lib, opts);

        MappedPlacementView view = make_placement_view(flow.netlist, lib);
        view.netlist.pad_positions = flow.pad_positions;
        SizingOptions sopts;
        const SizingResult sres =
            size_gates(flow.netlist, lib, view, flow.final_positions, sopts);

        delay.add(sres.delay_after, sres.delay_before);
        std::printf("%-8s | %9.2f | %9.2f %6zu | %+6.1f%%\n", b.name.c_str(),
                    sres.delay_before, sres.delay_after, sres.swaps,
                    (sres.delay_after / sres.delay_before - 1.0) * 100.0);
    }
    bench::print_rule(52);
    std::printf("geomean sized/unsized delay: %+.1f%%\n", delay.percent());
    return 0;
}
