// Shared helpers for the benchmark harness binaries: fixed-width table
// printing in the paper's format and geometric-mean summaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace lily::bench {

inline void print_rule(int width) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

/// Geometric mean of ratios (the paper reports average improvements).
class RatioTracker {
public:
    void add(double ours, double theirs) {
        if (ours > 0.0 && theirs > 0.0) {
            log_sum_ += std::log(ours / theirs);
            ++n_;
        }
    }
    double geomean() const { return n_ == 0 ? 1.0 : std::exp(log_sum_ / n_); }
    /// Percent change of `ours` vs `theirs` (negative = ours smaller).
    double percent() const { return (geomean() - 1.0) * 100.0; }

private:
    double log_sum_ = 0.0;
    int n_ = 0;
};

}  // namespace lily::bench
