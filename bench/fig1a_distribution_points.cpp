// Reproduces Figure 1.1(a): active gate area versus wire length. A sink
// computes the AND of k sources. When the sources sit near one another on
// the layout, one big gate (a single "distribution point") is best; when
// they are pinned far apart, the minimum-wire solution uses several smaller
// gates (k > 1 distribution points). The interconnect-blind baseline always
// picks the single biggest gate; Lily's wire term makes it split when the
// placement says so.
#include <array>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "subject/decompose.hpp"

using namespace lily;

namespace {

/// "Distribution points" of Figure 1.1(a): logic gates between the sources
/// and the sink — inverters are drive elements, not distribution points.
std::size_t distribution_points(const MappedNetlist& m, const Library& lib) {
    std::size_t k = 0;
    for (const GateInstance& inst : m.gates) {
        if (lib.gate(inst.gate).n_inputs() >= 2) ++k;
    }
    return k;
}

Network wide_and(unsigned k) {
    Network net("and" + std::to_string(k));
    std::vector<NodeId> ins;
    for (unsigned i = 0; i < k; ++i) ins.push_back(net.add_input("s" + std::to_string(i)));
    net.add_output("t", net.make_and(ins));
    return net;
}

/// Pad positions. Clustered: all sources side by side on the bottom edge.
/// Spread: sources come in pairs, each pair pinned to a different corner —
/// the Figure 1.1(a) situation where sources "are strongly connected to
/// different gate clusters ... and hence may have positions far from one
/// another". The sink pad sits mid-right in both cases.
std::vector<Point> pads(unsigned k, const Rect& region, bool spread) {
    std::vector<Point> out;
    if (spread) {
        const std::array<Point, 4> corners{region.ll, Point{region.ll.x, region.ur.y},
                                           Point{region.ur.x, region.ur.y},
                                           Point{region.ur.x, region.ll.y}};
        const double d = region.width() * 0.08;  // pair spacing along the edge
        for (unsigned i = 0; i < k; ++i) {
            const Point c = corners[(i / 2) % 3];  // 3 corners; 4th is the sink's
            const double off = (i % 2 == 0 ? 0.0 : d) + static_cast<double>(i / 6) * 2.0 * d;
            out.push_back({c.x + (c.x < region.center().x ? off : -off), c.y});
        }
    } else {
        const double step = region.width() / static_cast<double>(k + 1);
        for (unsigned i = 0; i < k; ++i) {
            out.push_back({region.ll.x + step * (i + 1), region.ll.y});  // bottom edge
        }
    }
    out.push_back({region.ur.x, region.center().y});  // sink
    return out;
}

}  // namespace

int main() {
    const Library lib = load_msu_big();
    std::printf("Figure 1.1(a): distribution points vs wire length (AND of k sources)\n");
    std::printf("%-2s %-9s | %8s %10s %10s | %8s %10s %10s\n", "k", "sources", "MIS k",
                "MIS cell", "MIS wire", "Lily k", "Lily cell", "Lily wire");
    bench::print_rule(84);

    for (const unsigned k : {3u, 4u, 5u, 6u}) {
        for (const bool spread : {false, true}) {
            const Network net = wide_and(k);
            const DecomposeResult sub = decompose(net);
            const SubjectPlacementView view = make_placement_view(sub.graph);
            const Rect region = make_region(view.netlist.total_cell_area(), 0.1);
            const auto pad_pos = pads(k, region, spread);

            // Baseline: interconnect-blind area mapping.
            const MapResult base = BaseMapper(lib).map(sub.graph);
            FlowOptions fopts;
            const FlowResult base_flow =
                run_backend(base.netlist, lib, fopts, PadsInRegion{pad_pos, region});

            // Lily with the same pads.
            const LilyOptions lopts;
            const LilyResult lily = LilyMapper(lib).map(sub.graph, lopts, pad_pos);
            const FlowResult lily_flow =
                run_backend(lily.netlist, lib, fopts, PadsInRegion{pad_pos, region});

            std::printf("%-2u %-9s | %8zu %10.2f %10.2f | %8zu %10.2f %10.2f\n", k,
                        spread ? "spread" : "clustered",
                        distribution_points(base_flow.netlist, lib),
                        base_flow.metrics.cell_area, base_flow.metrics.wirelength,
                        distribution_points(lily_flow.netlist, lib),
                        lily_flow.metrics.cell_area, lily_flow.metrics.wirelength);
        }
    }
    bench::print_rule(84);
    std::printf("shape: for small k / clustered sources one gate suffices; for spread\n"
                "sources Lily accepts more distribution points (gates) for less wire.\n");
    return 0;
}
