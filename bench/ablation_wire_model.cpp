// Section 3.4 design choice: Steiner-ratio-corrected half perimeter vs
// rectilinear spanning tree as the per-net wire estimator inside the
// mapper's cost function.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Wire-model ablation: Steiner-HPWL vs spanning tree (area mode)\n");
    std::printf("%-8s | %10s %10s | %10s %10s | %7s\n", "Ex.", "HP chip", "HP wire",
                "MST chip", "MST wire", "wire%");
    bench::print_rule(70);

    bench::RatioTracker wire;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        FlowOptions hp;
        hp.lily.wire_model = WireModel::SteinerHpwl;
        FlowOptions mst;
        mst.lily.wire_model = WireModel::SpanningTree;
        const FlowResult fh = run_lily_flow(b.network, lib, hp);
        const FlowResult fm = run_lily_flow(b.network, lib, mst);
        wire.add(fm.metrics.wirelength, fh.metrics.wirelength);
        std::printf("%-8s | %10.1f %10.1f | %10.1f %10.1f | %+6.1f%%\n", b.name.c_str(),
                    fh.metrics.chip_area, fh.metrics.wirelength, fm.metrics.chip_area,
                    fm.metrics.wirelength,
                    (fm.metrics.wirelength / fh.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(70);
    std::printf("geomean MST / Steiner-HPWL wire: %+.1f%%\n", wire.percent());
    return 0;
}
