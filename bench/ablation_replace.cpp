// Section 3.2 remark: the CM-of-Fans update can unbalance the evolving
// placement; re-running the global placement on the partially mapped
// network every few cones restores balance. This ablation compares never
// re-placing with re-placing every 4 cones.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Periodic re-placement ablation (area mode, CM-of-Fans)\n");
    std::printf("%-8s | %10s %10s | %10s %10s | %7s\n", "Ex.", "none chip", "none wire",
                "re4 chip", "re4 wire", "wire%");
    bench::print_rule(70);

    bench::RatioTracker wire;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 500) continue;  // re-placement is the costly knob
        FlowOptions none;
        none.lily.replace_every_n_cones = 0;
        FlowOptions re4;
        re4.lily.replace_every_n_cones = 4;
        const FlowResult f0 = run_lily_flow(b.network, lib, none);
        const FlowResult f4 = run_lily_flow(b.network, lib, re4);
        wire.add(f4.metrics.wirelength, f0.metrics.wirelength);
        std::printf("%-8s | %10.1f %10.1f | %10.1f %10.1f | %+6.1f%%\n", b.name.c_str(),
                    f0.metrics.chip_area, f0.metrics.wirelength, f4.metrics.chip_area,
                    f4.metrics.wirelength,
                    (f4.metrics.wirelength / f0.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(70);
    std::printf("geomean re-place/none wire: %+.1f%%\n", wire.percent());
    return 0;
}
