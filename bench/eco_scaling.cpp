// ECO scaling harness: how does incremental re-derivation pay off as the
// edit size grows?
//
// Builds one pipeline state for a synthetic control-logic workload, then
// sweeps edit sizes (a fraction of the source nodes per delta). For each
// size it times the incremental ECO application against a from-scratch
// batch flow of the same edited network, records the per-stage reuse
// ratios, the QoR deltas and a random-simulation equivalence verdict, and
// emits BENCH_eco.json.
//
// Exit is non-zero when any mapped result fails the equivalence check, or —
// with --gate=S — when an edit of at most 1% of the nodes fails to reach an
// S-fold speedup over the full reflow (the CI regression gate).
//
// Usage:
//   eco_scaling [--out=BENCH_eco.json] [--quick] [--gate=SPEEDUP]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/pipeline.hpp"
#include "library/standard_cells.hpp"
#include "netlist/simulate.hpp"

using namespace lily;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

struct SweepRow {
    const char* model = "local";  // "local" = bounded-fanout ECO targets
    std::size_t edits = 0;
    double fraction = 0.0;
    double eco_ms = 0.0;
    double full_ms = 0.0;
    double speedup = 0.0;
    bool full_reflow_fallback = false;
    double map_reuse = 0.0;
    double place_reuse = 0.0;
    double timing_reuse = 0.0;
    double cell_area_ratio = 0.0;       // incremental / batch
    double wirelength_ratio = 0.0;
    double critical_delay_ratio = 0.0;
    bool equivalent = false;
};

double ratio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_eco.json";
    bool quick = false;
    double gate_speedup = 0.0;   // 0 = no speedup gate
    std::size_t repeats = 2;     // best-of-N timing
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--gate=", 0) == 0) {
            gate_speedup = std::stod(arg.substr(7));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            repeats = std::max<std::size_t>(1, std::stoull(arg.substr(10)));
        } else {
            std::fprintf(stderr,
                         "usage: eco_scaling [--out=FILE] [--quick] [--gate=SPEEDUP] "
                         "[--repeats=N]\n");
            return 2;
        }
    }

    const Library lib = load_msu_big();
    const unsigned gates = quick ? 300 : 1200;
    const std::string name = quick ? "control_300" : "control_1200";
    const Network net =
        make_control_logic(gates / 8 + 8, gates / 16 + 4, gates, 0x5EED, "eco");

    FlowOptions opts;
    std::fprintf(stderr, "%s: building pipeline state (batch flow)...\n", name.c_str());
    const Clock::time_point tb = Clock::now();
    StatusOr<PipelineState> built = build_pipeline(net, lib, opts);
    const double build_ms = ms_since(tb);
    if (!built.is_ok()) {
        std::fprintf(stderr, "build_pipeline failed: %s\n", built.status().to_string().c_str());
        return 1;
    }
    const PipelineState base = std::move(built).value();
    const std::size_t n_nodes = base.net.node_count();
    std::fprintf(stderr, "%s: %zu source nodes, batch flow %.1f ms\n", name.c_str(), n_nodes,
                 build_ms);

    // The gated sweep uses local_delta — edits whose targets have bounded
    // transitive fanout, the realistic ECO shape. A trailing uniform
    // random_delta row is reported (not gated) to show the cascade honestly:
    // a uniform edit near the inputs logically changes most of the design,
    // so incremental re-derivation legitimately approaches batch cost there.
    struct SweepPoint {
        double fraction;
        const char* model;
    };
    const std::vector<SweepPoint> sweep_points = {
        {0.002, "local"}, {0.01, "local"}, {0.05, "local"}, {0.2, "local"}, {0.01, "uniform"}};
    std::vector<SweepRow> rows;
    bool all_equivalent = true;
    bool gate_failed = false;
    bench::RatioTracker area_qor;

    for (std::size_t f = 0; f < sweep_points.size(); ++f) {
        SweepRow row;
        row.model = sweep_points[f].model;
        row.fraction = sweep_points[f].fraction;
        row.edits = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(row.fraction * double(n_nodes))));

        const bool uniform = std::string(row.model) == "uniform";
        const NetDelta delta = uniform ? random_delta(base.net, row.edits, 0xD17A + 31 * f)
                                       : local_delta(base.net, row.edits, 0xD17A + 31 * f);

        // Best-of-N wall times: both sides are deterministic for a fixed
        // delta, so repeats differ only by scheduler/allocator noise — the
        // minimum is the honest cost of each path.
        PipelineState state;  // the maintained state after the delta (last rep)
        StatusOr<EcoStats> eco = Status(StatusCode::Internal, "not yet run");
        row.eco_ms = std::numeric_limits<double>::max();
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            PipelineState fresh = base;  // deep copy: each rep starts from the seed state
            const Clock::time_point t0 = Clock::now();
            eco = run_eco_flow_checked(fresh, delta);
            row.eco_ms = std::min(row.eco_ms, ms_since(t0));
            if (!eco.is_ok()) break;
            state = std::move(fresh);
        }
        if (!eco.is_ok()) {
            std::fprintf(stderr, "eco (%zu edits) failed: %s\n", row.edits,
                         eco.status().to_string().c_str());
            return 1;
        }
        const EcoStats& s = eco.value();
        row.full_reflow_fallback = s.full_reflow;
        row.map_reuse = s.map_reuse_ratio();
        row.place_reuse = s.place_reuse_ratio();
        row.timing_reuse = s.timing_reuse_ratio();

        // Reference: a from-scratch batch flow of the same edited network.
        StatusOr<FlowResult> full = Status(StatusCode::Internal, "not yet run");
        row.full_ms = std::numeric_limits<double>::max();
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            const Clock::time_point t0 = Clock::now();
            full = run_lily_flow_checked(state.net, lib, opts);
            row.full_ms = std::min(row.full_ms, ms_since(t0));
            if (!full.is_ok()) break;
        }
        if (!full.is_ok()) {
            std::fprintf(stderr, "batch reference (%zu edits) failed: %s\n", row.edits,
                         full.status().to_string().c_str());
            return 1;
        }
        row.speedup = row.eco_ms > 0.0 ? row.full_ms / row.eco_ms : 0.0;

        const FlowMetrics& mi = state.flow.metrics;
        const FlowMetrics& mb = full.value().metrics;
        row.cell_area_ratio = ratio(mi.cell_area, mb.cell_area);
        row.wirelength_ratio = ratio(mi.wirelength, mb.wirelength);
        row.critical_delay_ratio = ratio(mi.critical_delay, mb.critical_delay);
        area_qor.add(mi.cell_area, mb.cell_area);

        row.equivalent =
            equivalent_random(state.net, state.flow.netlist.to_network(lib), 8, 7) &&
            equivalent_random(state.net, full.value().netlist.to_network(lib), 8, 7);
        all_equivalent = all_equivalent && row.equivalent;

        std::fprintf(stderr,
                     "%s edits=%zu (%.1f%%): eco %.1f ms vs full %.1f ms -> %.1fx; "
                     "reuse map %.2f place %.2f timing %.2f; area ratio %.4f; "
                     "equivalent=%s%s\n",
                     row.model, row.edits, 100.0 * row.fraction, row.eco_ms, row.full_ms,
                     row.speedup, row.map_reuse, row.place_reuse, row.timing_reuse,
                     row.cell_area_ratio, row.equivalent ? "yes" : "NO",
                     row.full_reflow_fallback ? " (fell back to full reflow)" : "");

        if (gate_speedup > 0.0 && !uniform && row.fraction <= 0.01 &&
            row.speedup < gate_speedup) {
            std::fprintf(stderr,
                         "GATE: %zu-edit delta (%.1f%% of nodes) reached only %.2fx "
                         "(< %.1fx required)\n",
                         row.edits, 100.0 * row.fraction, row.speedup, gate_speedup);
            gate_failed = true;
        }
        rows.push_back(row);
    }

    std::ostringstream os;
    os << "{\n";
    os << "  \"workload\": \"" << name << "\",\n";
    os << "  \"source_nodes\": " << n_nodes << ",\n";
    os << "  \"batch_build_ms\": " << json_num(build_ms) << ",\n";
    os << "  \"all_equivalent\": " << (all_equivalent ? "true" : "false") << ",\n";
    os << "  \"geomean_cell_area_ratio\": " << json_num(area_qor.geomean()) << ",\n";
    os << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        os << "  {\n";
        os << "    \"edit_model\": \"" << r.model << "\",\n";
        os << "    \"edits\": " << r.edits << ",\n";
        os << "    \"fraction\": " << json_num(r.fraction) << ",\n";
        os << "    \"eco_ms\": " << json_num(r.eco_ms) << ",\n";
        os << "    \"full_reflow_ms\": " << json_num(r.full_ms) << ",\n";
        os << "    \"speedup\": " << json_num(r.speedup) << ",\n";
        os << "    \"full_reflow_fallback\": " << (r.full_reflow_fallback ? "true" : "false")
           << ",\n";
        os << "    \"reuse\": {\"mapping\": " << json_num(r.map_reuse)
           << ", \"placement\": " << json_num(r.place_reuse)
           << ", \"timing\": " << json_num(r.timing_reuse) << "},\n";
        os << "    \"qor\": {\"cell_area_ratio\": " << json_num(r.cell_area_ratio)
           << ", \"wirelength_ratio\": " << json_num(r.wirelength_ratio)
           << ", \"critical_delay_ratio\": " << json_num(r.critical_delay_ratio) << "},\n";
        os << "    \"equivalent\": " << (r.equivalent ? "true" : "false") << "\n";
        os << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";

    std::ofstream f(out_path);
    f << os.str();
    f.close();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    if (!all_equivalent) {
        std::fprintf(stderr, "FAIL: an ECO result is not equivalent to its source network\n");
        return 1;
    }
    if (gate_failed) {
        std::fprintf(stderr, "FAIL: small-edit speedup below the --gate threshold\n");
        return 1;
    }
    return 0;
}
