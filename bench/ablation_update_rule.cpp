// Section 3.2 design choice: CM-of-Merged vs CM-of-Fans dynamic placement
// update. CM-of-Merged stays faithful to the balanced initial placement;
// CM-of-Fans minimizes incremental wirelength to fanin/fanout rectangles
// (the option the paper used for its results).
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Update-rule ablation: CM-of-Merged vs CM-of-Fans (area mode)\n");
    std::printf("%-8s | %10s %10s | %10s %10s | %7s\n", "Ex.", "CMM chip", "CMM wire",
                "CMF chip", "CMF wire", "wire%");
    bench::print_rule(70);

    bench::RatioTracker wire;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        FlowOptions merged;
        merged.lily.update = PositionUpdate::CMofMerged;
        FlowOptions fans;
        fans.lily.update = PositionUpdate::CMofFans;
        const FlowResult fm = run_lily_flow(b.network, lib, merged);
        const FlowResult ff = run_lily_flow(b.network, lib, fans);
        wire.add(ff.metrics.wirelength, fm.metrics.wirelength);
        std::printf("%-8s | %10.1f %10.1f | %10.1f %10.1f | %+6.1f%%\n", b.name.c_str(),
                    fm.metrics.chip_area, fm.metrics.wirelength, ff.metrics.chip_area,
                    ff.metrics.wirelength,
                    (ff.metrics.wirelength / fm.metrics.wirelength - 1.0) * 100.0);
    }
    bench::print_rule(70);
    std::printf("geomean CM-of-Fans / CM-of-Merged wire: %+.1f%%\n", wire.percent());
    return 0;
}
