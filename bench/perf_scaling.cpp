// Section 5 runtime note: the paper places the 1892-gate inchoate C5315 in
// ~3 minutes and runs the whole Lily pipeline in ~10 minutes on a DEC3100.
// This google-benchmark binary measures how our global placement, baseline
// mapping and Lily mapping scale with circuit size on the host machine —
// the trend (roughly quadratic placement, near-linear mapping) is the
// reproducible claim, not the absolute seconds.
#include <benchmark/benchmark.h>

#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "place/netlist_adapters.hpp"
#include "subject/decompose.hpp"

using namespace lily;

namespace {

Network sized_network(std::int64_t gates) {
    return make_control_logic(static_cast<unsigned>(gates / 8 + 8),
                              static_cast<unsigned>(gates / 16 + 4),
                              static_cast<unsigned>(gates), 0xBEEF, "scaling");
}

void BM_GlobalPlacement(benchmark::State& state) {
    const Network net = sized_network(state.range(0));
    const DecomposeResult sub = decompose(net);
    SubjectPlacementView view = make_placement_view(sub.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    for (auto _ : state) {
        benchmark::DoNotOptimize(place_global(view.netlist, region));
    }
    state.counters["subject_gates"] = static_cast<double>(sub.graph.gate_count());
}

void BM_BaselineMap(benchmark::State& state) {
    const Network net = sized_network(state.range(0));
    const DecomposeResult sub = decompose(net);
    const Library lib = load_msu_big();
    BaseMapper mapper(lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.map(sub.graph));
    }
    state.counters["subject_gates"] = static_cast<double>(sub.graph.gate_count());
}

void BM_LilyMap(benchmark::State& state) {
    const Network net = sized_network(state.range(0));
    const DecomposeResult sub = decompose(net);
    const Library lib = load_msu_big();
    LilyMapper mapper(lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.map(sub.graph));
    }
    state.counters["subject_gates"] = static_cast<double>(sub.graph.gate_count());
}

void BM_LilyMapMultiplier(benchmark::State& state) {
    // The C6288-style stress case: deep carry-save arrays.
    const Network net = make_multiplier(static_cast<unsigned>(state.range(0)));
    const DecomposeResult sub = decompose(net);
    const Library lib = load_msu_big();
    LilyMapper mapper(lib);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.map(sub.graph));
    }
    state.counters["subject_gates"] = static_cast<double>(sub.graph.gate_count());
}

}  // namespace

BENCHMARK(BM_GlobalPlacement)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LilyMapMultiplier)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineMap)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LilyMap)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
