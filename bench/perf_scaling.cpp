// Machine-readable perf harness for the parallel flow engine.
//
// Runs the full Lily pipeline on synthetic control-logic workloads twice —
// once with 1 thread, once with N — and emits BENCH_perf.json with
// per-stage wall times, the measured speedup, QoR deltas and a
// bit_identical flag (the deterministic reductions guarantee the N-thread
// run reproduces the 1-thread output exactly; the harness verifies it).
//
// Absolute milliseconds are not portable across machines, so the harness
// also measures a fixed floating-point calibration workload and reports
// stage times normalized by it. The --baseline check compares the
// *normalized* single-thread total against a committed reference
// (bench/BENCH_baseline.json) and fails on a >20% regression — catching
// real slowdowns while tolerating faster or slower hardware.
//
// Usage:
//   perf_scaling [--threads=N] [--out=BENCH_perf.json]
//                [--baseline=bench/BENCH_baseline.json] [--quick]
//
// Section 5 runtime note: the paper places the 1892-gate inchoate C5315 in
// ~3 minutes and runs the whole Lily pipeline in ~10 minutes on a DEC3100;
// the reproducible claim is the scaling trend, not the absolute seconds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "util/parallel.hpp"

using namespace lily;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Stage wall times of one pipeline run, pulled from FlowDiagnostics.
struct StageTimes {
    double decompose_ms = 0.0;
    double mapping_ms = 0.0;
    double placement_ms = 0.0;
    double routing_ms = 0.0;
    double timing_ms = 0.0;
    double total_ms = 0.0;
};

StageTimes stage_times(const FlowDiagnostics& diag, double total_ms) {
    StageTimes t;
    auto grab = [&](const char* name, double& slot) {
        if (const StageDiagnostics* s = diag.find(name)) slot = s->elapsed_ms;
    };
    grab("decompose", t.decompose_ms);
    grab("mapping", t.mapping_ms);
    grab("placement", t.placement_ms);
    grab("routing", t.routing_ms);
    grab("timing", t.timing_ms);
    t.total_ms = total_ms;
    return t;
}

struct RunOutcome {
    StageTimes times;
    FlowMetrics metrics;
    std::vector<Point> final_positions;
    bool ok = false;
    std::string error;
};

RunOutcome run_flow(const Network& net, const Library& lib, std::size_t threads) {
    FlowOptions opts;
    opts.threads = threads;
    const Clock::time_point t0 = Clock::now();
    StatusOr<FlowResult> res = run_lily_flow_checked(net, lib, opts);
    const double total = ms_since(t0);
    RunOutcome out;
    if (!res.is_ok()) {
        out.error = res.status().to_string();
        return out;
    }
    out.times = stage_times(res.value().diagnostics, total);
    out.metrics = res.value().metrics;
    out.final_positions = std::move(res.value().final_positions);
    out.ok = true;
    return out;
}

bool bit_identical(const RunOutcome& a, const RunOutcome& b) {
    if (a.metrics.gate_count != b.metrics.gate_count) return false;
    if (a.metrics.cell_area != b.metrics.cell_area) return false;
    if (a.metrics.chip_area != b.metrics.chip_area) return false;
    if (a.metrics.wirelength != b.metrics.wirelength) return false;
    if (a.metrics.critical_delay != b.metrics.critical_delay) return false;
    if (a.metrics.max_congestion != b.metrics.max_congestion) return false;
    if (a.final_positions.size() != b.final_positions.size()) return false;
    for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
        if (a.final_positions[i].x != b.final_positions[i].x ||
            a.final_positions[i].y != b.final_positions[i].y) {
            return false;
        }
    }
    return true;
}

/// Fixed single-thread floating-point workload, best of three: the unit in
/// which stage times are expressed for machine-independent comparisons.
double calibration_ms() {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const Clock::time_point t0 = Clock::now();
        double acc = 0.0;
        double x = 1.000000001;
        for (int i = 0; i < 20'000'000; ++i) {
            acc += x;
            x = x * 1.0000000001 + 1e-9;
        }
        // Defeat dead-code elimination without perturbing the timing.
        volatile double sink = acc + x;
        (void)sink;
        best = std::min(best, ms_since(t0));
    }
    return best;
}

std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void emit_times(std::ostream& os, const char* key, const StageTimes& t) {
    os << "    \"" << key << "\": {"
       << "\"decompose_ms\": " << json_num(t.decompose_ms)
       << ", \"mapping_ms\": " << json_num(t.mapping_ms)
       << ", \"placement_ms\": " << json_num(t.placement_ms)
       << ", \"routing_ms\": " << json_num(t.routing_ms)
       << ", \"timing_ms\": " << json_num(t.timing_ms)
       << ", \"total_ms\": " << json_num(t.total_ms) << "}";
}

/// Minimal extraction of `"key": <number>` from a flat JSON file. Returns
/// false when the key is absent.
bool json_lookup(const std::string& text, const std::string& key, double& out) {
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return false;
    const std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos) return false;
    return std::sscanf(text.c_str() + colon + 1, "%lf", &out) == 1;
}

struct WorkloadReport {
    std::string name;
    std::size_t subject_gates = 0;
    StageTimes single;
    StageTimes multi;
    double speedup = 0.0;
    double cell_area_delta = 0.0;
    double wirelength_delta = 0.0;
    double critical_delay_delta = 0.0;
    bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
    std::size_t threads = 0;  // 0 -> LILY_THREADS / hardware concurrency
    std::string out_path = "BENCH_perf.json";
    std::string baseline_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0) {
            threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::fprintf(stderr,
                         "usage: perf_scaling [--threads=N] [--out=FILE] "
                         "[--baseline=FILE] [--quick]\n");
            return 2;
        }
    }
    if (threads == 0) threads = default_thread_count();

    const double cal_ms = calibration_ms();
    std::fprintf(stderr, "calibration: %.1f ms (fixed FP workload)\n", cal_ms);

    const Library lib = load_msu_big();
    struct Workload {
        std::string name;
        unsigned gates;
    };
    std::vector<Workload> workloads;
    if (quick) {
        workloads.push_back({"control_200", 200});
        workloads.push_back({"control_400", 400});
    } else {
        workloads.push_back({"control_400", 400});
        workloads.push_back({"control_1600", 1600});
    }

    std::vector<WorkloadReport> reports;
    bool all_identical = true;
    double single_total = 0.0;
    for (const Workload& w : workloads) {
        const Network net = make_control_logic(w.gates / 8 + 8, w.gates / 16 + 4, w.gates,
                                               0xBEEF, w.name);
        std::fprintf(stderr, "%s: threads=1 ...\n", w.name.c_str());
        const RunOutcome r1 = run_flow(net, lib, 1);
        if (!r1.ok) {
            std::fprintf(stderr, "%s: single-thread flow failed: %s\n", w.name.c_str(),
                         r1.error.c_str());
            return 1;
        }
        std::fprintf(stderr, "%s: threads=%zu ...\n", w.name.c_str(), threads);
        const RunOutcome rn = run_flow(net, lib, threads);
        if (!rn.ok) {
            std::fprintf(stderr, "%s: %zu-thread flow failed: %s\n", w.name.c_str(), threads,
                         rn.error.c_str());
            return 1;
        }

        WorkloadReport rep;
        rep.name = w.name;
        rep.subject_gates = w.gates;
        rep.single = r1.times;
        rep.multi = rn.times;
        rep.speedup = rn.times.total_ms > 0.0 ? r1.times.total_ms / rn.times.total_ms : 0.0;
        rep.cell_area_delta = rn.metrics.cell_area - r1.metrics.cell_area;
        rep.wirelength_delta = rn.metrics.wirelength - r1.metrics.wirelength;
        rep.critical_delay_delta = rn.metrics.critical_delay - r1.metrics.critical_delay;
        rep.identical = bit_identical(r1, rn);
        all_identical = all_identical && rep.identical;
        single_total += r1.times.total_ms;
        reports.push_back(std::move(rep));

        std::fprintf(stderr, "%s: 1T %.1f ms, %zuT %.1f ms, speedup %.2fx, identical=%s\n",
                     w.name.c_str(), r1.times.total_ms, threads, rn.times.total_ms,
                     rep.speedup, rep.identical ? "yes" : "no");
    }

    const double normalized_total = cal_ms > 0.0 ? single_total / cal_ms : 0.0;
    const std::string mode_key = quick ? "normalized_single_thread_total_quick"
                                       : "normalized_single_thread_total_full";

    std::ostringstream os;
    os << "{\n";
    os << "  \"threads\": " << threads << ",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"calibration_ms\": " << json_num(cal_ms) << ",\n";
    os << "  \"single_thread_total_ms\": " << json_num(single_total) << ",\n";
    os << "  \"" << mode_key << "\": " << json_num(normalized_total) << ",\n";
    os << "  \"all_bit_identical\": " << (all_identical ? "true" : "false") << ",\n";
    os << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport& r = reports[i];
        os << "  {\n";
        os << "    \"name\": \"" << r.name << "\",\n";
        os << "    \"subject_gates\": " << r.subject_gates << ",\n";
        emit_times(os, "single_thread", r.single);
        os << ",\n";
        emit_times(os, "multi_thread", r.multi);
        os << ",\n";
        os << "    \"speedup\": " << json_num(r.speedup) << ",\n";
        os << "    \"qor\": {\"cell_area_delta\": " << json_num(r.cell_area_delta)
           << ", \"wirelength_delta\": " << json_num(r.wirelength_delta)
           << ", \"critical_delay_delta\": " << json_num(r.critical_delay_delta) << "},\n";
        os << "    \"bit_identical\": " << (r.identical ? "true" : "false") << "\n";
        os << "  }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";

    std::ofstream f(out_path);
    f << os.str();
    f.close();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: multi-thread output differs from single-thread output\n");
        return 1;
    }

    if (!baseline_path.empty()) {
        std::ifstream bf(baseline_path);
        if (!bf) {
            std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
            return 1;
        }
        std::stringstream buf;
        buf << bf.rdbuf();
        double expected = 0.0;
        if (!json_lookup(buf.str(), mode_key, expected) || expected <= 0.0) {
            std::fprintf(stderr, "FAIL: baseline %s lacks %s\n", baseline_path.c_str(),
                         mode_key.c_str());
            return 1;
        }
        const double ratio = normalized_total / expected;
        std::fprintf(stderr, "baseline check: %.2f vs %.2f expected (%.0f%%)\n",
                     normalized_total, expected, ratio * 100.0);
        if (ratio > 1.20) {
            std::fprintf(stderr,
                         "FAIL: single-thread flow is %.0f%% of the calibrated baseline "
                         "(>120%% = regression)\n",
                         ratio * 100.0);
            return 1;
        }
    }
    return 0;
}
