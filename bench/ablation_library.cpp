// Section 5, opening discussion: tiny (<=3-input) vs big (<=6-input)
// library, traditional vs layout-driven mapping. The paper's claim: the
// big library shrinks active cell area but raises routing complexity, so
// its final chip area can be as large as the tiny library's; Lily with the
// big library beats both traditional flows on chip area and wire length.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library tiny = load_msu_tiny();
    const Library big = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Library ablation: chip area / wirelength by flow and library\n");
    std::printf("%-8s | %9s %9s | %9s %9s | %9s %9s\n", "Ex.", "tiny chip", "tiny wire",
                "big chip", "big wire", "Lily chip", "Lily wire");
    bench::print_rule(72);

    bench::RatioTracker lily_vs_tiny, lily_vs_big;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        const FlowResult f_tiny = run_baseline_flow(b.network, tiny);
        const FlowResult f_big = run_baseline_flow(b.network, big);
        const FlowResult f_lily = run_lily_flow(b.network, big);
        lily_vs_tiny.add(f_lily.metrics.chip_area, f_tiny.metrics.chip_area);
        lily_vs_big.add(f_lily.metrics.chip_area, f_big.metrics.chip_area);
        std::printf("%-8s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f\n", b.name.c_str(),
                    f_tiny.metrics.chip_area, f_tiny.metrics.wirelength, f_big.metrics.chip_area,
                    f_big.metrics.wirelength, f_lily.metrics.chip_area,
                    f_lily.metrics.wirelength);
    }
    bench::print_rule(72);
    std::printf("geomean Lily(big) chip vs traditional: tiny %+.1f%%, big %+.1f%%\n",
                lily_vs_tiny.percent(), lily_vs_big.percent());
    std::printf("(paper: A_hat < min(A_tiny, A_big), W_hat < min(W_tiny, W_big))\n");
    return 0;
}
