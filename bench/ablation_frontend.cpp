// Front-end ablation: the paper's input networks are "optimized by
// technology independent synthesis procedures". This bench quantifies what
// that buys: the PLA-style benchmarks are mapped raw (two-level) and after
// the src/opt script (constants, buffers, kernel + cube extraction,
// factoring), through the full Lily pipeline.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "opt/optimize.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    // The raw two-level PLA shapes (before any optimization), matching the
    // multi-level suite's parameters at half scale.
    std::vector<Benchmark> suite;
    suite.push_back({"apex3", make_pla_flat(27, 25, 140, 0xA3, "apex3")});
    suite.push_back({"duke2", make_pla_flat(11, 15, 44, 0xD2, "duke2")});
    suite.push_back({"e64", make_pla_flat(33, 33, 33, 0xE6, "e64")});
    suite.push_back({"misex1", make_pla_flat(8, 7, 12, 0x31, "misex1")});
    suite.push_back({"misex3", make_pla_flat(14, 14, 75, 0x33, "misex3")});

    std::printf("Technology-independent front end: raw two-level PLAs vs optimized\n");
    std::printf("%-8s | %6s %9s %9s | %6s %6s %9s %9s | %7s\n", "Ex.", "lits", "chip",
                "wire", "lits", "gates", "chip", "wire", "chip%");
    bench::print_rule(88);

    bench::RatioTracker chip, wire;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        OptimizeStats stats;
        const Network optimized = optimize(b.network, {}, &stats);

        const FlowResult raw = run_lily_flow(b.network, lib);
        const FlowResult opt = run_lily_flow(optimized, lib);
        chip.add(opt.metrics.chip_area, raw.metrics.chip_area);
        wire.add(opt.metrics.wirelength, raw.metrics.wirelength);
        std::printf("%-8s | %6zu %9.1f %9.1f | %6zu %6zu %9.1f %9.1f | %+6.1f%%\n",
                    b.name.c_str(), stats.literals_before, raw.metrics.chip_area,
                    raw.metrics.wirelength, stats.literals_after, opt.metrics.gate_count,
                    opt.metrics.chip_area, opt.metrics.wirelength,
                    (opt.metrics.chip_area / raw.metrics.chip_area - 1.0) * 100.0);
    }
    bench::print_rule(88);
    std::printf("geomean optimized/raw: chip %+.1f%%, wire %+.1f%%\n", chip.percent(),
                wire.percent());
    std::printf("shape: literal reduction on PLA-style circuits translates into smaller\n"
                "chips; already-multilevel circuits are roughly unchanged.\n");
    return 0;
}
