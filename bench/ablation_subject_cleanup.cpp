// Subject-graph construction ablation: the paper-era (MIS-style) NAND2/INV
// decomposition retains inverter pairs around complemented sub-expressions;
// a modern construction folds INV(INV(x)) = x during structural hashing.
// Folding shrinks BOTH flows' absolute results dramatically — and narrows
// Lily's relative advantage, because leaner subject graphs leave the
// mapper fewer interconnect-relevant choices. The reproduction tables use
// the period-accurate construction; this bench quantifies the difference.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Subject-graph cleanup ablation (area mode, INV-pair folding)\n");
    std::printf("%-8s | %9s %9s %7s | %9s %9s %7s\n", "Ex.", "MIS chip", "Lily chip",
                "Lily%", "MIS chip", "Lily chip", "Lily%");
    std::printf("%-8s | %27s | %27s\n", "", "paper-era subject graph", "folded INV pairs");
    bench::print_rule(70);

    bench::RatioTracker kept_gap, folded_gap, absolute;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 800) continue;
        FlowOptions kept;  // default: cancel_inverter_pairs = false
        FlowOptions folded;
        folded.decompose.cancel_inverter_pairs = true;
        const FlowResult kb = run_baseline_flow(b.network, lib, kept);
        const FlowResult kl = run_lily_flow(b.network, lib, kept);
        const FlowResult fb = run_baseline_flow(b.network, lib, folded);
        const FlowResult fl = run_lily_flow(b.network, lib, folded);
        kept_gap.add(kl.metrics.chip_area, kb.metrics.chip_area);
        folded_gap.add(fl.metrics.chip_area, fb.metrics.chip_area);
        absolute.add(fb.metrics.chip_area, kb.metrics.chip_area);
        std::printf("%-8s | %9.1f %9.1f %+6.1f%% | %9.1f %9.1f %+6.1f%%\n", b.name.c_str(),
                    kb.metrics.chip_area, kl.metrics.chip_area,
                    (kl.metrics.chip_area / kb.metrics.chip_area - 1.0) * 100.0,
                    fb.metrics.chip_area, fl.metrics.chip_area,
                    (fl.metrics.chip_area / fb.metrics.chip_area - 1.0) * 100.0);
    }
    bench::print_rule(70);
    std::printf("geomean Lily-vs-MIS chip gap: paper-era %+.1f%%, folded %+.1f%%\n",
                kept_gap.percent(), folded_gap.percent());
    std::printf("geomean absolute baseline-chip change from folding: %+.1f%%\n",
                absolute.percent());
    std::printf("finding: folding improves every absolute number but shrinks the\n"
                "relative layout-driven advantage the paper measures.\n");
    return 0;
}
