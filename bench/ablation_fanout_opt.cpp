// Extension ablation: the fanout-optimization post-pass the paper lists as
// future work. High-fanout nets are split through spatially clustered
// buffer trees; this trades a little cell area for lighter loads on the
// critical nets. Compared in timing mode, where load dominates.
#include <cstdio>

#include "bench/common.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/fanout_opt.hpp"
#include "lily/lily_mapper.hpp"
#include "sta/timing.hpp"
#include "subject/decompose.hpp"

using namespace lily;

namespace {

struct LoadStats {
    double worst = 0.0;
    std::size_t violations = 0;  // pins loaded beyond their max_load rating
};

/// Worst output load and max-load violations after the back end.
LoadStats load_stats(const MappedNetlist& nl, const Library& lib, const FlowResult& f) {
    MappedPlacementView v = make_placement_view(nl, lib);
    v.netlist.pad_positions = f.pad_positions;
    const TimingReport r = analyze_timing(nl, lib, v, f.final_positions);
    LoadStats out;
    for (std::size_t i = 0; i < nl.gates.size(); ++i) {
        out.worst = std::max(out.worst, r.load[i]);
        if (r.load[i] > lib.gate(nl.gates[i].gate).pin(0).max_load) ++out.violations;
    }
    return out;
}

}  // namespace

int main() {
    const Library lib = load_msu_big();
    const auto suite = paper_suite(0.5);

    std::printf("Fanout-optimization ablation (timing mode, max fanout 12)\n");
    std::printf("%-8s | %6s %8s %5s | %6s %8s %5s %5s | %7s\n", "Ex.", "gates", "delay",
                "viol", "gates", "delay", "viol", "bufs", "delay%");
    bench::print_rule(78);

    bench::RatioTracker delay;
    for (const Benchmark& b : suite) {
        if (b.network.logic_node_count() > 700) continue;
        FlowOptions opts;
        opts.objective = MapObjective::Delay;

        // Without the post-pass.
        const FlowResult plain = run_lily_flow(b.network, lib, opts);

        // With the post-pass: map, buffer, then run the shared back end.
        const DecomposeResult sub = decompose(b.network);
        LilyOptions lopts = opts.lily;
        lopts.objective = MapObjective::Delay;
        lopts.cover = CoverMode::Cones;
        const LilyResult mapped = LilyMapper(lib).map(sub.graph, lopts);
        MappedNetlist buffered = mapped.netlist;
        std::vector<Point> seed = mapped.instance_positions;
        FanoutOptOptions fo;
        fo.max_fanout = 12;
        fo.sinks_per_buffer = 8;
        const FanoutOptResult fres = optimize_fanout(buffered, lib, &seed, fo);
        const FlowResult opt = run_backend(
            buffered, lib, opts,
            PadsInRegion{mapped.pad_positions, mapped.inchoate_placement.region}, seed);

        delay.add(opt.metrics.critical_delay, plain.metrics.critical_delay);
        const LoadStats lv_plain = load_stats(plain.netlist, lib, plain);
        const LoadStats lv_opt = load_stats(buffered, lib, opt);
        std::printf("%-8s | %6zu %8.2f %5zu | %6zu %8.2f %5zu %5zu | %+6.1f%%\n",
                    b.name.c_str(), plain.metrics.gate_count, plain.metrics.critical_delay,
                    lv_plain.violations, opt.metrics.gate_count, opt.metrics.critical_delay,
                    lv_opt.violations, fres.buffers_added,
                    (opt.metrics.critical_delay / plain.metrics.critical_delay - 1.0) * 100.0);
    }
    bench::print_rule(78);
    std::printf("geomean buffered/plain delay: %+.1f%%. Suite fanouts are moderate, so the\n"
                "pass is roughly delay-neutral — its job is drive legality (viol column):\n\n",
                delay.percent());

    // Targeted demonstration: one signal fanning out to 64 XOR sinks.
    Network hot("hot");
    const NodeId src_a = hot.add_input("a");
    const NodeId src_b = hot.add_input("b");
    const NodeId hub = hot.make_and2(src_a, src_b);
    for (int i = 0; i < 64; ++i) {
        const NodeId other = hot.add_input("x" + std::to_string(i));
        hot.add_output("o" + std::to_string(i), hot.make_xor2(hub, other));
    }
    FlowOptions dopts;
    dopts.objective = MapObjective::Delay;
    const DecomposeResult hsub = decompose(hot);
    LilyOptions hlopts = dopts.lily;
    hlopts.objective = MapObjective::Delay;
    hlopts.cover = CoverMode::Cones;
    const LilyResult hmap = LilyMapper(lib).map(hsub.graph, hlopts);
    const FlowResult hot_plain = run_backend(
        hmap.netlist, lib, dopts,
        PadsInRegion{hmap.pad_positions, hmap.inchoate_placement.region},
        hmap.instance_positions);
    MappedNetlist hbuf = hmap.netlist;
    std::vector<Point> hseed = hmap.instance_positions;
    FanoutOptOptions hfo;
    hfo.max_fanout = 12;
    hfo.sinks_per_buffer = 8;
    const FanoutOptResult hres = optimize_fanout(hbuf, lib, &hseed, hfo);
    const FlowResult hot_opt = run_backend(
        hbuf, lib, dopts, PadsInRegion{hmap.pad_positions, hmap.inchoate_placement.region},
        hseed);
    const LoadStats hot_lv_plain = load_stats(hmap.netlist, lib, hot_plain);
    const LoadStats hot_lv_opt = load_stats(hbuf, lib, hot_opt);
    std::printf("hot net (1 driver -> 64 sinks): plain %.2f ns worst load %.2f pF "
                "(%zu violations)\n                                buffered %.2f ns worst "
                "load %.2f pF (%zu violations, %zu buffers)\n",
                hot_plain.metrics.critical_delay, hot_lv_plain.worst, hot_lv_plain.violations,
                hot_opt.metrics.critical_delay, hot_lv_opt.worst, hot_lv_opt.violations,
                hres.buffers_added);
    return 0;
}
