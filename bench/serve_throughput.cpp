// Serving-layer throughput bench: spawns a real lily_serve daemon and
// measures, at 1/4/8 worker slots,
//   * batch throughput (jobs/sec over a submitted-then-drained batch),
//   * closed-loop round-trip latency (p50/p99 over sequential map calls),
//   * shed rate under a 2x-capacity overload burst,
// and gates on bit-identity: every served mapped BLIF must equal the
// in-process run_flow_job output for the same spec byte for byte (the PR 3
// determinism guarantee extended across the process boundary).
//
//   serve_throughput [--out=BENCH_serve.json] [--quick]
//
// Exit 0 iff every served output was bit-identical and the overload burst
// shed at least one job at every slot count.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "circuits/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "serve/client.hpp"
#include "util/json.hpp"
#include "util/subprocess.hpp"

namespace {

using namespace lily;

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct SlotResult {
    std::uint32_t workers = 0;
    std::uint32_t batch_jobs = 0;
    double batch_ms = 0.0;
    double jobs_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint32_t overload_submits = 0;
    std::uint32_t overload_shed = 0;
    double shed_rate = 0.0;
    bool bit_identical = false;
};

std::string read_genlib_text() {
    // The bench runs from anywhere; the library ships with the repo and the
    // binary embeds the source path at compile time via the circuits dep.
    std::ifstream in(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib",
                     std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_serve.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::fprintf(stderr, "serve_throughput: bad argument '%s'\n", arg.c_str());
            return 2;
        }
    }

    char tmpl[] = "/tmp/lily-bench-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
        std::perror("mkdtemp");
        return 2;
    }
    const std::string dir = tmpl;
    const std::string genlib = read_genlib_text();
    const std::vector<std::pair<std::string, std::string>> circuits = {
        {"alu4", write_blif(make_alu(4))},
        {"sym9", write_blif(make_symmetric9())},
        {"ctl", write_blif(make_control_logic(12, 6, 60, 7, "ctl"))},
    };

    const std::uint32_t batch_n = quick ? 12 : 48;
    const std::uint32_t latency_n = quick ? 8 : 24;
    const std::uint32_t queue_cap = 16;
    const std::vector<std::uint32_t> slot_counts = {1, 4, 8};
    std::vector<SlotResult> results;
    bool all_identical = true;
    bool all_shed = true;

    // Reference outputs computed once, in-process, per circuit.
    std::vector<std::string> reference;
    for (const auto& [name, blif] : circuits) {
        JobSpec spec;
        spec.name = name;
        spec.blif = blif;
        spec.genlib = genlib;
        reference.push_back(run_flow_job(spec).mapped_blif);
    }

    for (const std::uint32_t workers : slot_counts) {
        const std::string socket = dir + "/serve-" + std::to_string(workers) + ".sock";
        const std::string spool = dir + "/spool-" + std::to_string(workers);
        const std::vector<std::string> daemon_argv = {
            LILY_SERVE_BIN,
            "--socket=" + socket,
            "--spool=" + spool,
            "--workers=" + std::to_string(workers),
            "--queue-cap=" + std::to_string(queue_cap),
        };
        StatusOr<pid_t> spawned = spawn_process(daemon_argv, dir + "/server.log");
        if (!spawned.is_ok()) {
            std::fprintf(stderr, "serve_throughput: spawn failed: %s\n",
                         spawned.status().to_string().c_str());
            return 1;
        }
        const pid_t pid = spawned.value();
        ServeClient client(socket);
        for (int i = 0; i < 200 && !client.health().is_ok(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }

        SlotResult row;
        row.workers = workers;
        row.batch_jobs = batch_n;
        row.bit_identical = true;

        // Phase 1: bit-identity gate (also warms the daemon).
        for (std::size_t c = 0; c < circuits.size(); ++c) {
            JobSpec spec;
            spec.name = circuits[c].first;
            spec.blif = circuits[c].second;
            spec.genlib = genlib;
            const StatusOr<JobOutcome> served = client.map(spec);
            if (!served.is_ok() || served.value().mapped_blif != reference[c]) {
                row.bit_identical = false;
                std::fprintf(stderr,
                             "serve_throughput: served output for %s at %u workers is "
                             "NOT bit-identical to in-process flow\n",
                             circuits[c].first.c_str(), workers);
            }
        }

        // Phase 2: batch throughput — submit everything, then drain.
        const double batch_start = now_ms();
        std::vector<std::uint64_t> ids;
        for (std::uint32_t i = 0; i < batch_n; ++i) {
            JobSpec spec;
            spec.name = "batch-" + std::to_string(i);
            spec.blif = circuits[i % circuits.size()].second;
            spec.genlib = genlib;
            for (;;) {
                const StatusOr<SubmitReply> reply = client.submit(spec);
                if (!reply.is_ok()) {
                    std::fprintf(stderr, "serve_throughput: submit failed: %s\n",
                                 reply.status().to_string().c_str());
                    return 1;
                }
                if (reply.value().accepted) {
                    ids.push_back(reply.value().job_id);
                    break;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::max<std::uint32_t>(reply.value().retry_after_ms, 5)));
            }
        }
        for (const std::uint64_t id : ids) {
            for (;;) {
                const StatusOr<ResultReply> reply = client.wait(id, 2000);
                if (!reply.is_ok()) {
                    std::fprintf(stderr, "serve_throughput: wait failed: %s\n",
                                 reply.status().to_string().c_str());
                    return 1;
                }
                if (reply.value().terminal) break;
            }
        }
        row.batch_ms = now_ms() - batch_start;
        row.jobs_per_sec = 1000.0 * batch_n / row.batch_ms;

        // Phase 3: closed-loop latency distribution.
        std::vector<double> latencies;
        for (std::uint32_t i = 0; i < latency_n; ++i) {
            JobSpec spec;
            spec.name = "lat-" + std::to_string(i);
            spec.blif = circuits[i % circuits.size()].second;
            spec.genlib = genlib;
            const double t0 = now_ms();
            const StatusOr<JobOutcome> outcome = client.map(spec);
            if (outcome.is_ok()) latencies.push_back(now_ms() - t0);
        }
        row.p50_ms = percentile(latencies, 0.50);
        row.p99_ms = percentile(latencies, 0.99);

        // Phase 4: 2x overload burst. A sequential submitter cannot outrun
        // many fast workers, so first wedge every slot with an injected
        // hang job; the burst then races only the queue, and submitting 2x
        // its capacity must shed (never hang, never crash).
        for (std::uint32_t i = 0; i < workers; ++i) {
            JobSpec spec;
            spec.name = "wedge-" + std::to_string(i);
            spec.blif = circuits[0].second;
            spec.genlib = genlib;
            spec.fault_spec = "serve:hang-sticky";
            (void)client.submit(spec);
        }
        for (int i = 0; i < 200; ++i) {
            const StatusOr<HealthReply> h = client.health();
            if (h.is_ok() && h.value().workers_busy == workers) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        const std::uint32_t burst = 2 * queue_cap;
        for (std::uint32_t i = 0; i < burst; ++i) {
            JobSpec spec;
            spec.name = "burst-" + std::to_string(i);
            spec.blif = circuits[i % circuits.size()].second;
            spec.genlib = genlib;
            const StatusOr<SubmitReply> reply = client.submit(spec);
            if (!reply.is_ok()) break;
            ++row.overload_submits;
            if (!reply.value().accepted) ++row.overload_shed;
        }
        row.shed_rate = row.overload_submits == 0
                            ? 0.0
                            : static_cast<double>(row.overload_shed) / row.overload_submits;

        (void)client.shutdown(/*drain=*/false);
        stop_process(pid, 4000.0);

        all_identical = all_identical && row.bit_identical;
        all_shed = all_shed && row.overload_shed > 0;
        std::fprintf(stderr,
                     "serve_throughput: %u workers: %.1f jobs/s, p50 %.1fms p99 %.1fms, "
                     "shed %u/%u (%.0f%%), bit-identical=%s\n",
                     workers, row.jobs_per_sec, row.p50_ms, row.p99_ms, row.overload_shed,
                     row.overload_submits, 100.0 * row.shed_rate,
                     row.bit_identical ? "yes" : "NO");
        results.push_back(row);
    }

    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("serve_throughput");
    w.kv("batch_jobs", static_cast<std::uint64_t>(batch_n));
    w.kv("queue_capacity", static_cast<std::uint64_t>(queue_cap));
    w.kv("all_bit_identical", all_identical);
    w.key("slots");
    w.begin_array();
    for (const SlotResult& row : results) {
        w.begin_object();
        w.kv("workers", static_cast<std::uint64_t>(row.workers));
        w.kv("jobs_per_sec", row.jobs_per_sec);
        w.kv("batch_ms", row.batch_ms);
        w.kv("p50_ms", row.p50_ms);
        w.kv("p99_ms", row.p99_ms);
        w.kv("overload_submits", static_cast<std::uint64_t>(row.overload_submits));
        w.kv("overload_shed", static_cast<std::uint64_t>(row.overload_shed));
        w.kv("shed_rate", row.shed_rate);
        w.kv("bit_identical", row.bit_identical);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    std::ofstream out(out_path, std::ios::binary);
    out << w.str() << "\n";
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    const std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
        std::fprintf(stderr, "serve_throughput: cleanup failed for %s\n", dir.c_str());
    }
    if (!all_identical) {
        std::fprintf(stderr, "FAIL: served outputs diverged from the in-process flow\n");
        return 1;
    }
    if (!all_shed) {
        std::fprintf(stderr, "FAIL: overload burst was never shed (admission control gap)\n");
        return 1;
    }
    return 0;
}
