// Serving-layer throughput bench: spawns real lily_serve daemons and
// measures, at 1/4/8 worker slots in BOTH pool modes,
//   * batch throughput (jobs/sec over a submitted-then-drained batch),
//   * closed-loop round-trip latency (p50/p99 over sequential map calls),
//   * shed rate under a 2x-capacity overload burst,
// and gates on bit-identity: every served mapped BLIF must equal the
// in-process run_flow_job output for the same spec byte for byte (the PR 3
// determinism guarantee extended across the process boundary).
//
// The two pool modes are the A/B of the warm-pool PR: `cold` retires every
// worker after one job (fork + double parse per job, the previous
// fork-per-job architecture) while `warm` reuses preforked workers and
// their process-local artifact caches. The report carries both so the
// speedup is measured, not asserted.
//
//   serve_throughput [--out=BENCH_serve.json] [--quick]
//                    [--baseline=FILE] [--gate-ratio=R]
//
// With --baseline, the measured warm 8-worker jobs/s must be at least
// R (default 0.8) times the baseline file's warm_jobs_per_sec_8 —
// a regression gate that tolerates machine-to-machine noise.
//
// Exit 0 iff every served output was bit-identical, the overload burst
// shed at least one job at every slot count, and the baseline gate (when
// requested) passed.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "circuits/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "serve/client.hpp"
#include "util/json.hpp"
#include "util/subprocess.hpp"

namespace {

using namespace lily;

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct SlotResult {
    std::string mode;  // "warm" or "cold"
    std::uint32_t workers = 0;
    std::uint32_t batch_jobs = 0;
    double batch_ms = 0.0;
    double jobs_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint32_t overload_submits = 0;
    std::uint32_t overload_shed = 0;
    double shed_rate = 0.0;
    bool bit_identical = false;
};

struct BenchInputs {
    std::vector<std::pair<std::string, std::string>> circuits;
    std::vector<std::string> reference;  // in-process mapped BLIF per circuit
    std::string genlib;
    std::uint32_t batch_n = 48;
    std::uint32_t latency_n = 24;
    std::uint32_t queue_cap = 16;
};

std::string read_genlib_text() {
    // The bench runs from anywhere; the library ships with the repo and the
    // binary embeds the source path at compile time via the circuits dep.
    std::ifstream in(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib",
                     std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// Minimal extraction of `"key": <number>` from a flat JSON file. Returns
/// false when the key is absent.
bool json_lookup(const std::string& text, const std::string& key, double& out) {
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return false;
    const std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos) return false;
    out = std::strtod(text.c_str() + colon + 1, nullptr);
    return true;
}

/// Run the full measurement ladder against one daemon configuration.
/// Returns false on a transport-level failure (spawn, submit, wait).
bool measure(const BenchInputs& in, const std::string& dir, const std::string& mode,
             std::uint32_t workers, SlotResult& row) {
    const std::string tag = mode + "-" + std::to_string(workers);
    const std::string socket = dir + "/serve-" + tag + ".sock";
    const std::string spool = dir + "/spool-" + tag;
    const std::vector<std::string> daemon_argv = {
        LILY_SERVE_BIN,
        "--socket=" + socket,
        "--spool=" + spool,
        "--workers=" + std::to_string(workers),
        "--queue-cap=" + std::to_string(in.queue_cap),
        "--pool=" + mode,
    };
    StatusOr<pid_t> spawned = spawn_process(daemon_argv, dir + "/server-" + tag + ".log");
    if (!spawned.is_ok()) {
        std::fprintf(stderr, "serve_throughput: spawn failed: %s\n",
                     spawned.status().to_string().c_str());
        return false;
    }
    const pid_t pid = spawned.value();
    ServeClient client(socket);
    for (int i = 0; i < 200 && !client.health().is_ok(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    row.mode = mode;
    row.workers = workers;
    row.batch_jobs = in.batch_n;
    row.bit_identical = true;

    // Phase 1: bit-identity gate (also warms the daemon's caches).
    for (std::size_t c = 0; c < in.circuits.size(); ++c) {
        JobSpec spec;
        spec.name = in.circuits[c].first;
        spec.blif = in.circuits[c].second;
        spec.genlib = in.genlib;
        const StatusOr<JobOutcome> served = client.map(spec);
        if (!served.is_ok() || served.value().mapped_blif != in.reference[c]) {
            row.bit_identical = false;
            std::fprintf(stderr,
                         "serve_throughput: served output for %s (%s, %u workers) is "
                         "NOT bit-identical to in-process flow\n",
                         in.circuits[c].first.c_str(), mode.c_str(), workers);
        }
    }

    // Phase 2: batch throughput — submit everything, then drain.
    const double batch_start = now_ms();
    std::vector<std::uint64_t> ids;
    for (std::uint32_t i = 0; i < in.batch_n; ++i) {
        JobSpec spec;
        spec.name = "batch-" + std::to_string(i);
        spec.blif = in.circuits[i % in.circuits.size()].second;
        spec.genlib = in.genlib;
        for (;;) {
            const StatusOr<SubmitReply> reply = client.submit(spec);
            if (!reply.is_ok()) {
                std::fprintf(stderr, "serve_throughput: submit failed: %s\n",
                             reply.status().to_string().c_str());
                return false;
            }
            if (reply.value().accepted) {
                ids.push_back(reply.value().job_id);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<std::uint32_t>(reply.value().retry_after_ms, 5)));
        }
    }
    for (const std::uint64_t id : ids) {
        for (;;) {
            const StatusOr<ResultReply> reply = client.wait(id, 2000);
            if (!reply.is_ok()) {
                std::fprintf(stderr, "serve_throughput: wait failed: %s\n",
                             reply.status().to_string().c_str());
                return false;
            }
            if (reply.value().terminal) break;
        }
    }
    row.batch_ms = now_ms() - batch_start;
    row.jobs_per_sec = 1000.0 * in.batch_n / row.batch_ms;

    // Phase 3: closed-loop latency distribution.
    std::vector<double> latencies;
    for (std::uint32_t i = 0; i < in.latency_n; ++i) {
        JobSpec spec;
        spec.name = "lat-" + std::to_string(i);
        spec.blif = in.circuits[i % in.circuits.size()].second;
        spec.genlib = in.genlib;
        const double t0 = now_ms();
        const StatusOr<JobOutcome> outcome = client.map(spec);
        if (outcome.is_ok()) latencies.push_back(now_ms() - t0);
    }
    row.p50_ms = percentile(latencies, 0.50);
    row.p99_ms = percentile(latencies, 0.99);

    // Cache effectiveness so far (before the overload burst muddies it).
    if (const StatusOr<HealthReply> h = client.health(); h.is_ok()) {
        row.cache_hits = h.value().cache_hits;
        row.cache_misses = h.value().cache_misses;
    }

    // Phase 4: 2x overload burst. A sequential submitter cannot outrun
    // many fast workers, so first wedge every slot with an injected
    // hang job; the burst then races only the queue, and submitting 2x
    // its capacity must shed (never hang, never crash).
    for (std::uint32_t i = 0; i < workers; ++i) {
        JobSpec spec;
        spec.name = "wedge-" + std::to_string(i);
        spec.blif = in.circuits[0].second;
        spec.genlib = in.genlib;
        spec.fault_spec = "serve:hang-sticky";
        (void)client.submit(spec);
    }
    for (int i = 0; i < 200; ++i) {
        const StatusOr<HealthReply> h = client.health();
        if (h.is_ok() && h.value().workers_busy == workers) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const std::uint32_t burst = 2 * in.queue_cap;
    for (std::uint32_t i = 0; i < burst; ++i) {
        JobSpec spec;
        spec.name = "burst-" + std::to_string(i);
        spec.blif = in.circuits[i % in.circuits.size()].second;
        spec.genlib = in.genlib;
        const StatusOr<SubmitReply> reply = client.submit(spec);
        if (!reply.is_ok()) break;
        ++row.overload_submits;
        if (!reply.value().accepted) ++row.overload_shed;
    }
    row.shed_rate = row.overload_submits == 0
                        ? 0.0
                        : static_cast<double>(row.overload_shed) / row.overload_submits;

    (void)client.shutdown(/*drain=*/false);
    stop_process(pid, 4000.0);

    std::fprintf(stderr,
                 "serve_throughput: %s %u workers: %.1f jobs/s, p50 %.1fms p99 %.1fms, "
                 "cache %llu/%llu hit/miss, shed %u/%u (%.0f%%), bit-identical=%s\n",
                 mode.c_str(), workers, row.jobs_per_sec, row.p50_ms, row.p99_ms,
                 static_cast<unsigned long long>(row.cache_hits),
                 static_cast<unsigned long long>(row.cache_misses), row.overload_shed,
                 row.overload_submits, 100.0 * row.shed_rate,
                 row.bit_identical ? "yes" : "NO");
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_serve.json";
    std::string baseline_path;
    double gate_ratio = 0.8;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg.rfind("--gate-ratio=", 0) == 0) {
            gate_ratio = std::strtod(arg.c_str() + 13, nullptr);
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::fprintf(stderr, "serve_throughput: bad argument '%s'\n", arg.c_str());
            return 2;
        }
    }

    char tmpl[] = "/tmp/lily-bench-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
        std::perror("mkdtemp");
        return 2;
    }
    const std::string dir = tmpl;

    BenchInputs in;
    in.genlib = read_genlib_text();
    in.circuits = {
        {"alu4", write_blif(make_alu(4))},
        {"sym9", write_blif(make_symmetric9())},
        {"ctl", write_blif(make_control_logic(12, 6, 60, 7, "ctl"))},
    };
    in.batch_n = quick ? 12 : 48;
    in.latency_n = quick ? 8 : 24;
    in.queue_cap = 16;

    // Reference outputs computed once, in-process, per circuit.
    for (const auto& [name, blif] : in.circuits) {
        JobSpec spec;
        spec.name = name;
        spec.blif = blif;
        spec.genlib = in.genlib;
        in.reference.push_back(run_flow_job(spec).mapped_blif);
    }

    const std::vector<std::uint32_t> slot_counts = {1, 4, 8};
    std::vector<SlotResult> results;
    bool all_identical = true;
    bool all_shed = true;
    double warm8 = 0.0, cold8 = 0.0, warm8_p50 = 0.0;

    // Cold first so the warm numbers cannot ride any OS-level cache warmth
    // the cold pass created — if anything this biases against warm.
    for (const std::string mode : {"cold", "warm"}) {
        for (const std::uint32_t workers : slot_counts) {
            SlotResult row;
            if (!measure(in, dir, mode, workers, row)) return 1;
            all_identical = all_identical && row.bit_identical;
            all_shed = all_shed && row.overload_shed > 0;
            if (workers == 8 && mode == "warm") {
                warm8 = row.jobs_per_sec;
                warm8_p50 = row.p50_ms;
            }
            if (workers == 8 && mode == "cold") cold8 = row.jobs_per_sec;
            results.push_back(std::move(row));
        }
    }

    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("serve_throughput");
    w.kv("batch_jobs", static_cast<std::uint64_t>(in.batch_n));
    w.kv("queue_capacity", static_cast<std::uint64_t>(in.queue_cap));
    w.kv("all_bit_identical", all_identical);
    w.kv("warm_jobs_per_sec_8", warm8);
    w.kv("cold_jobs_per_sec_8", cold8);
    w.kv("warm_p50_ms_8", warm8_p50);
    w.kv("warm_over_cold_8", cold8 > 0.0 ? warm8 / cold8 : 0.0);
    w.key("slots");
    w.begin_array();
    for (const SlotResult& row : results) {
        w.begin_object();
        w.kv("mode", row.mode);
        w.kv("workers", static_cast<std::uint64_t>(row.workers));
        w.kv("jobs_per_sec", row.jobs_per_sec);
        w.kv("batch_ms", row.batch_ms);
        w.kv("p50_ms", row.p50_ms);
        w.kv("p99_ms", row.p99_ms);
        w.kv("cache_hits", row.cache_hits);
        w.kv("cache_misses", row.cache_misses);
        w.kv("overload_submits", static_cast<std::uint64_t>(row.overload_submits));
        w.kv("overload_shed", static_cast<std::uint64_t>(row.overload_shed));
        w.kv("shed_rate", row.shed_rate);
        w.kv("bit_identical", row.bit_identical);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    std::ofstream out(out_path, std::ios::binary);
    out << w.str() << "\n";
    std::fprintf(stderr, "wrote %s (warm/cold at 8 workers: %.1f/%.1f jobs/s = %.2fx)\n",
                 out_path.c_str(), warm8, cold8, cold8 > 0.0 ? warm8 / cold8 : 0.0);

    const std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
        std::fprintf(stderr, "serve_throughput: cleanup failed for %s\n", dir.c_str());
    }
    if (!all_identical) {
        std::fprintf(stderr, "FAIL: served outputs diverged from the in-process flow\n");
        return 1;
    }
    if (!all_shed) {
        std::fprintf(stderr, "FAIL: overload burst was never shed (admission control gap)\n");
        return 1;
    }
    if (!baseline_path.empty()) {
        std::ifstream bf(baseline_path);
        if (!bf) {
            std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
            return 1;
        }
        std::stringstream buf;
        buf << bf.rdbuf();
        double expected = 0.0;
        if (!json_lookup(buf.str(), "warm_jobs_per_sec_8", expected) || expected <= 0.0) {
            std::fprintf(stderr, "FAIL: baseline %s lacks warm_jobs_per_sec_8\n",
                         baseline_path.c_str());
            return 1;
        }
        const double ratio = warm8 / expected;
        std::fprintf(stderr, "baseline check: %.1f vs %.1f jobs/s recorded (%.0f%%)\n",
                     warm8, expected, ratio * 100.0);
        if (ratio < gate_ratio) {
            std::fprintf(stderr, "FAIL: warm throughput fell below %.0f%% of baseline\n",
                         gate_ratio * 100.0);
            return 1;
        }
    }
    return 0;
}
