// Area-driven end-to-end comparison on one benchmark circuit: runs both of
// the paper's pipelines (Section 5) and prints the Table-1-style metrics —
// instance area, final chip area and routed interconnect length.
//
//   ./area_flow [benchmark-name]     (default: C880; see --list)
#include <cstdio>
#include <cstring>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"

using namespace lily;

int main(int argc, char** argv) {
    const auto suite = paper_suite(1.0);
    std::string which = argc > 1 ? argv[1] : "C880";
    if (which == "--list") {
        for (const Benchmark& b : suite) std::printf("%s\n", b.name.c_str());
        return 0;
    }
    const auto it = std::find_if(suite.begin(), suite.end(),
                                 [&](const Benchmark& b) { return b.name == which; });
    if (it == suite.end()) {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", which.c_str());
        return 1;
    }
    const Network& net = it->network;
    const Library lib = load_msu_big();

    std::printf("benchmark %s: %zu PIs, %zu POs, %zu nodes\n", which.c_str(),
                net.inputs().size(), net.outputs().size(), net.logic_node_count());

    const FlowResult base = run_baseline_flow(net, lib);
    const FlowResult lily = run_lily_flow(net, lib);

    const auto row = [](const char* name, const FlowMetrics& m) {
        std::printf("%-10s %6zu gates  cell %8.3f mm^2  chip %8.3f mm^2  wire %9.1f mm  "
                    "congestion %.2f\n",
                    name, m.gate_count, m.cell_area_mm2(), m.chip_area_mm2(), m.wirelength_mm(),
                    m.max_congestion);
    };
    row("baseline", base.metrics);
    row("lily", lily.metrics);
    std::printf("lily vs baseline: chip %+.1f%%, wire %+.1f%%\n",
                (lily.metrics.chip_area / base.metrics.chip_area - 1.0) * 100.0,
                (lily.metrics.wirelength / base.metrics.wirelength - 1.0) * 100.0);
    return 0;
}
