// Quickstart: parse a BLIF circuit, decompose it into the NAND2/INV subject
// graph, map it with the baseline mapper and with Lily, and verify both
// results against the source by random simulation.
//
//   ./quickstart [file.blif]
//
// Without an argument a small built-in full-adder BLIF is used.
#include <cstdio>
#include <string>

#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"

using namespace lily;

namespace {

constexpr const char* kFullAdderBlif = R"(.model full_adder
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names axb cin cx
11 1
.names ab cx cout
1- 1
-1 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
    // 1. Load a circuit.
    const Network net = argc > 1 ? read_blif_file(argv[1]) : read_blif(kFullAdderBlif);
    std::printf("circuit '%s': %zu inputs, %zu outputs, %zu logic nodes, depth %zu\n",
                net.name().c_str(), net.inputs().size(), net.outputs().size(),
                net.logic_node_count(), net.depth());

    // 2. Decompose into the 2-input NAND / inverter subject graph.
    const DecomposeResult sub = decompose(net);
    std::printf("subject graph: %zu base gates, depth %zu\n", sub.graph.gate_count(),
                sub.graph.depth());

    // 3. Load the bundled cell library (gates up to 6 inputs).
    const Library lib = load_msu_big();
    std::printf("library '%s': %zu gates, max %u inputs\n", lib.name().c_str(), lib.size(),
                lib.max_gate_inputs());

    // 4. Map: interconnect-blind baseline (DAGON/MIS style)...
    const MapResult base = BaseMapper(lib).map(sub.graph);
    std::printf("baseline mapping: %zu gates, area %.1f\n", base.netlist.gate_count(),
                base.total_area);

    // ...and layout-driven (Lily).
    const LilyResult lily = LilyMapper(lib).map(sub.graph);
    std::printf("lily mapping:     %zu gates, area %.1f, estimated wire %.1f\n",
                lily.netlist.gate_count(), lily.total_area, lily.estimated_wirelength);

    // 5. Verify equivalence by 64-way random simulation.
    const bool base_ok = equivalent_random(net, base.netlist.to_network(lib), 32, 1234);
    const bool lily_ok = equivalent_random(net, lily.netlist.to_network(lib), 32, 1234);
    std::printf("equivalence: baseline %s, lily %s\n", base_ok ? "PASS" : "FAIL",
                lily_ok ? "PASS" : "FAIL");

    // 6. Show the chosen gates of the Lily netlist.
    std::printf("\nlily netlist:\n");
    for (const GateInstance& inst : lily.netlist.gates) {
        std::printf("  %-8s drives s%u <-", lib.gate(inst.gate).name.c_str(), inst.driver);
        for (const SubjectId in : inst.inputs) std::printf(" s%u", in);
        std::printf("\n");
    }
    return base_ok && lily_ok ? 0 : 1;
}
