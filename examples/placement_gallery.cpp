// Placement gallery: renders ASCII views of the three placement stages the
// paper's pipeline produces for a benchmark — the balanced global placement
// of the inchoate network, Lily's constructive (mapPosition) placement of
// the mapped gates, and the final row-legalized detailed placement.
//
//   ./placement_gallery [benchmark-name]   (default: b9)
#include <cstdio>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "route/global_router.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "subject/decompose.hpp"

using namespace lily;

namespace {

void render(const char* title, std::span<const Point> pts, const Rect& region) {
    constexpr int W = 64;
    constexpr int H = 24;
    std::vector<std::string> grid(H, std::string(W, '.'));
    int clipped = 0;
    for (const Point& p : pts) {
        const double fx = (p.x - region.ll.x) / std::max(region.width(), 1e-9);
        const double fy = (p.y - region.ll.y) / std::max(region.height(), 1e-9);
        if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) {
            ++clipped;
            continue;
        }
        const int cx = std::min(W - 1, static_cast<int>(fx * W));
        const int cy = std::min(H - 1, static_cast<int>(fy * H));
        char& cell = grid[static_cast<std::size_t>(H - 1 - cy)][static_cast<std::size_t>(cx)];
        if (cell == '.') {
            cell = '1';
        } else if (cell >= '1' && cell < '9') {
            ++cell;
        } else {
            cell = '#';
        }
    }
    std::printf("\n%s (%zu cells%s)\n", title, pts.size(),
                clipped > 0 ? (", " + std::to_string(clipped) + " outside view").c_str() : "");
    std::printf("+%s+\n", std::string(W, '-').c_str());
    for (const std::string& row : grid) std::printf("|%s|\n", row.c_str());
    std::printf("+%s+\n", std::string(W, '-').c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const std::string which = argc > 1 ? argv[1] : "b9";
    const auto suite = paper_suite(1.0);
    const auto it = std::find_if(suite.begin(), suite.end(),
                                 [&](const Benchmark& b) { return b.name == which; });
    if (it == suite.end()) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", which.c_str());
        return 1;
    }
    const Library lib = load_msu_big();
    const DecomposeResult sub = decompose(it->network);
    const LilyResult lily = LilyMapper(lib).map(sub.graph);

    render("1. balanced global placement of the inchoate network",
           lily.inchoate_placement.positions, lily.inchoate_placement.region);
    render("2. Lily constructive placement (mapPositions of chosen gates)",
           lily.instance_positions, lily.inchoate_placement.region);

    const FlowResult flow = run_lily_flow(it->network, lib);
    render("3. detailed (row-legalized) placement of the mapped circuit",
           flow.final_positions, flow.region);

    // 4. Routing congestion heat map (horizontal + vertical edge usage).
    MappedPlacementView view = make_placement_view(flow.netlist, lib);
    view.netlist.pad_positions = flow.pad_positions;
    const RouteResult routed =
        route_global(view.netlist, flow.final_positions, flow.region, {});
    {
        const std::size_t n = routed.grid;
        double peak = 1e-9;
        for (const double u : routed.h_usage) peak = std::max(peak, u);
        for (const double u : routed.v_usage) peak = std::max(peak, u);
        std::printf("\n4. routing congestion (peak edge usage %.0f, '.' idle to '9' peak)\n",
                    peak);
        std::printf("+%s+\n", std::string(n, '-').c_str());
        for (std::size_t y = n; y-- > 0;) {
            std::string row;
            for (std::size_t x = 0; x < n; ++x) {
                double u = 0.0;
                if (x + 1 < n) u = std::max(u, routed.h_usage[x + y * (n - 1)]);
                if (y + 1 < n) u = std::max(u, routed.v_usage[x + y * n]);
                const int level = static_cast<int>(u / peak * 9.0 + 0.5);
                row.push_back(level == 0 ? '.' : static_cast<char>('0' + level));
            }
            std::printf("|%s|\n", row.c_str());
        }
        std::printf("+%s+\n", std::string(n, '-').c_str());
    }

    std::printf("\n%zu subject gates -> %zu mapped gates; routed wire %.1f units, "
                "%zu detoured connections\n",
                sub.graph.gate_count(), flow.metrics.gate_count, flow.metrics.wirelength,
                routed.mazed_connections);
    return 0;
}
