// Command-line mapping tool: the downstream-user entry point. Reads a
// combinational BLIF circuit and a genlib library, runs the selected
// mapper, and writes the mapped netlist back out as BLIF (one .names block
// per gate instance) together with a metrics report.
//
//   ./map_blif <circuit.blif> [options]
//     --lib <file.genlib>   library (default: bundled msu_big)
//     --mapper lily|base    mapper (default: lily)
//     --delay               optimize delay instead of area
//     --buffer <N>          fanout-optimize to at most N sinks per net
//     --out <mapped.blif>   write the mapped netlist here
#include <cstdio>
#include <cstring>
#include <string>

#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/fanout_opt.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"

using namespace lily;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <circuit.blif> [--lib f.genlib] [--mapper lily|base]\n"
                     "          [--delay] [--buffer N] [--out mapped.blif]\n",
                     argv[0]);
        return 2;
    }
    std::string circuit_path = argv[1];
    std::string lib_path;
    std::string out_path;
    std::string mapper = "lily";
    bool delay = false;
    std::size_t buffer_limit = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--lib") {
            lib_path = next();
        } else if (arg == "--mapper") {
            mapper = next();
        } else if (arg == "--delay") {
            delay = true;
        } else if (arg == "--buffer") {
            buffer_limit = static_cast<std::size_t>(std::stoul(next()));
        } else if (arg == "--out") {
            out_path = next();
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    try {
        const Network net = read_blif_file(circuit_path);
        const Library lib = lib_path.empty() ? load_msu_big() : read_genlib_file(lib_path);
        std::printf("circuit %s: %zu PIs, %zu POs, %zu nodes; library %s (%zu gates)\n",
                    net.name().c_str(), net.inputs().size(), net.outputs().size(),
                    net.logic_node_count(), lib.name().c_str(), lib.size());

        FlowOptions opts;
        opts.objective = delay ? MapObjective::Delay : MapObjective::Area;
        FlowResult result = mapper == "base" ? run_baseline_flow(net, lib, opts)
                                             : run_lily_flow(net, lib, opts);

        if (buffer_limit >= 2) {
            FanoutOptOptions fo;
            fo.max_fanout = buffer_limit;
            const FanoutOptResult r =
                optimize_fanout(result.netlist, lib, &result.final_positions, fo);
            std::printf("fanout optimization: %zu buffers on %zu nets\n", r.buffers_added,
                        r.nets_split);
        }

        const bool ok = equivalent_random(net, result.netlist.to_network(lib), 32, 2024);
        std::printf("mapped: %zu gates, cell %.3f mm^2, chip %.3f mm^2, wire %.1f mm, "
                    "delay %.2f ns — equivalence %s\n",
                    result.netlist.gate_count(), result.metrics.cell_area_mm2(),
                    result.metrics.chip_area_mm2(), result.metrics.wirelength_mm(),
                    result.metrics.critical_delay, ok ? "PASS" : "FAIL");

        if (!out_path.empty()) {
            write_blif_file(result.netlist.to_network(lib, net.name() + "_mapped"), out_path);
            std::printf("wrote %s\n", out_path.c_str());
        }
        return ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
