// Timing-driven end-to-end comparison (Table 2 style): maps an ALU in delay
// mode with both pipelines, then reports the longest path delay (wire
// delays included) and walks the critical path of the Lily result.
//
//   ./timing_flow [width]            (default: 16-bit ALU)
#include <cstdio>
#include <cstdlib>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "sta/timing.hpp"

using namespace lily;

int main(int argc, char** argv) {
    const unsigned width = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
    const Network net = make_alu(width, true);
    const Library lib = load_msu_big();
    std::printf("%u-bit ALU: %zu nodes, depth %zu\n", width, net.logic_node_count(),
                net.depth());

    FlowOptions opts;
    opts.objective = MapObjective::Delay;
    const FlowResult base = run_baseline_flow(net, lib, opts);
    const FlowResult lily = run_lily_flow(net, lib, opts);

    std::printf("baseline: %4zu gates, cell %7.3f mm^2, delay %7.2f ns\n",
                base.metrics.gate_count, base.metrics.cell_area_mm2(),
                base.metrics.critical_delay);
    std::printf("lily:     %4zu gates, cell %7.3f mm^2, delay %7.2f ns  (%+.1f%%)\n",
                lily.metrics.gate_count, lily.metrics.cell_area_mm2(),
                lily.metrics.critical_delay,
                (lily.metrics.critical_delay / base.metrics.critical_delay - 1.0) * 100.0);

    // Re-run timing on the Lily result to show the critical path.
    MappedPlacementView view = make_placement_view(lily.netlist, lib);
    view.netlist.pad_positions = lily.pad_positions;  // the flow's pad ring
    TimingOptions topts;
    const TimingReport rep =
        analyze_timing(lily.netlist, lib, view, lily.final_positions, topts);
    const SlackReport slack = analyze_slack(lily.netlist, lib, rep);
    std::printf("\nslack at target %.2f ns: worst %.3f ns, %zu violations\n",
                slack.required_time, slack.worst_slack, slack.violations);
    std::printf("critical path to '%s' (%.2f ns):\n", rep.critical_output.c_str(),
                rep.critical_delay);
    for (const std::size_t i : rep.critical_path) {
        const GateInstance& inst = lily.netlist.gates[i];
        std::printf("  %-8s arrival %7.2f ns  load %5.3f pF  at (%.1f, %.1f)\n",
                    lib.gate(inst.gate).name.c_str(), rep.arrival[i].worst(), rep.load[i],
                    lily.final_positions[i].x, lily.final_positions[i].y);
    }
    return 0;
}
