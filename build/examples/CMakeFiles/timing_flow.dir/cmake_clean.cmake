file(REMOVE_RECURSE
  "CMakeFiles/timing_flow.dir/timing_flow.cpp.o"
  "CMakeFiles/timing_flow.dir/timing_flow.cpp.o.d"
  "timing_flow"
  "timing_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
