# Empty dependencies file for timing_flow.
# This may be replaced when dependencies are built.
