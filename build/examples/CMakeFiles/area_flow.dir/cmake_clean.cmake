file(REMOVE_RECURSE
  "CMakeFiles/area_flow.dir/area_flow.cpp.o"
  "CMakeFiles/area_flow.dir/area_flow.cpp.o.d"
  "area_flow"
  "area_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
