# Empty compiler generated dependencies file for area_flow.
# This may be replaced when dependencies are built.
