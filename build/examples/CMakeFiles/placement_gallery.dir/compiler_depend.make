# Empty compiler generated dependencies file for placement_gallery.
# This may be replaced when dependencies are built.
