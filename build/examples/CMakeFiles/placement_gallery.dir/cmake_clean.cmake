file(REMOVE_RECURSE
  "CMakeFiles/placement_gallery.dir/placement_gallery.cpp.o"
  "CMakeFiles/placement_gallery.dir/placement_gallery.cpp.o.d"
  "placement_gallery"
  "placement_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
