file(REMOVE_RECURSE
  "CMakeFiles/subject_test.dir/subject_test.cpp.o"
  "CMakeFiles/subject_test.dir/subject_test.cpp.o.d"
  "subject_test"
  "subject_test.pdb"
  "subject_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
