# Empty dependencies file for subject_test.
# This may be replaced when dependencies are built.
