# Empty dependencies file for lily_test.
# This may be replaced when dependencies are built.
