file(REMOVE_RECURSE
  "CMakeFiles/lily_test.dir/lily_test.cpp.o"
  "CMakeFiles/lily_test.dir/lily_test.cpp.o.d"
  "lily_test"
  "lily_test.pdb"
  "lily_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
