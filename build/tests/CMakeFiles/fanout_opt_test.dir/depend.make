# Empty dependencies file for fanout_opt_test.
# This may be replaced when dependencies are built.
