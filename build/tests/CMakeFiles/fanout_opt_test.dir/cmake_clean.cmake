file(REMOVE_RECURSE
  "CMakeFiles/fanout_opt_test.dir/fanout_opt_test.cpp.o"
  "CMakeFiles/fanout_opt_test.dir/fanout_opt_test.cpp.o.d"
  "fanout_opt_test"
  "fanout_opt_test.pdb"
  "fanout_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanout_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
