# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/blif_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/subject_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/lily_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/fanout_opt_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/output_test[1]_include.cmake")
include("/root/repo/build/tests/sizing_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
