file(REMOVE_RECURSE
  "../bench/ablation_sizing"
  "../bench/ablation_sizing.pdb"
  "CMakeFiles/ablation_sizing.dir/ablation_sizing.cpp.o"
  "CMakeFiles/ablation_sizing.dir/ablation_sizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
