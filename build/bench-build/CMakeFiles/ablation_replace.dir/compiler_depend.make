# Empty compiler generated dependencies file for ablation_replace.
# This may be replaced when dependencies are built.
