file(REMOVE_RECURSE
  "../bench/ablation_replace"
  "../bench/ablation_replace.pdb"
  "CMakeFiles/ablation_replace.dir/ablation_replace.cpp.o"
  "CMakeFiles/ablation_replace.dir/ablation_replace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
