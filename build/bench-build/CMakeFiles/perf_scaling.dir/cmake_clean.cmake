file(REMOVE_RECURSE
  "../bench/perf_scaling"
  "../bench/perf_scaling.pdb"
  "CMakeFiles/perf_scaling.dir/perf_scaling.cpp.o"
  "CMakeFiles/perf_scaling.dir/perf_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
