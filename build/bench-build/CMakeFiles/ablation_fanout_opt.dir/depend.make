# Empty dependencies file for ablation_fanout_opt.
# This may be replaced when dependencies are built.
