file(REMOVE_RECURSE
  "../bench/ablation_fanout_opt"
  "../bench/ablation_fanout_opt.pdb"
  "CMakeFiles/ablation_fanout_opt.dir/ablation_fanout_opt.cpp.o"
  "CMakeFiles/ablation_fanout_opt.dir/ablation_fanout_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fanout_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
