file(REMOVE_RECURSE
  "../bench/ablation_frontend"
  "../bench/ablation_frontend.pdb"
  "CMakeFiles/ablation_frontend.dir/ablation_frontend.cpp.o"
  "CMakeFiles/ablation_frontend.dir/ablation_frontend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
