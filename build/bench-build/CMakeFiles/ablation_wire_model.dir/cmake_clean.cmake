file(REMOVE_RECURSE
  "../bench/ablation_wire_model"
  "../bench/ablation_wire_model.pdb"
  "CMakeFiles/ablation_wire_model.dir/ablation_wire_model.cpp.o"
  "CMakeFiles/ablation_wire_model.dir/ablation_wire_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wire_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
