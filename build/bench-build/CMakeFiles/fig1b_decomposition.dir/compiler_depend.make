# Empty compiler generated dependencies file for fig1b_decomposition.
# This may be replaced when dependencies are built.
