file(REMOVE_RECURSE
  "../bench/fig1b_decomposition"
  "../bench/fig1b_decomposition.pdb"
  "CMakeFiles/fig1b_decomposition.dir/fig1b_decomposition.cpp.o"
  "CMakeFiles/fig1b_decomposition.dir/fig1b_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
