file(REMOVE_RECURSE
  "../bench/ablation_update_rule"
  "../bench/ablation_update_rule.pdb"
  "CMakeFiles/ablation_update_rule.dir/ablation_update_rule.cpp.o"
  "CMakeFiles/ablation_update_rule.dir/ablation_update_rule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
