# Empty compiler generated dependencies file for ablation_update_rule.
# This may be replaced when dependencies are built.
