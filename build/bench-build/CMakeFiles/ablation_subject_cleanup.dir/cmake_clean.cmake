file(REMOVE_RECURSE
  "../bench/ablation_subject_cleanup"
  "../bench/ablation_subject_cleanup.pdb"
  "CMakeFiles/ablation_subject_cleanup.dir/ablation_subject_cleanup.cpp.o"
  "CMakeFiles/ablation_subject_cleanup.dir/ablation_subject_cleanup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subject_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
