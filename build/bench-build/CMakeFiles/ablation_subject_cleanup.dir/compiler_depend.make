# Empty compiler generated dependencies file for ablation_subject_cleanup.
# This may be replaced when dependencies are built.
