file(REMOVE_RECURSE
  "../bench/table2_delay"
  "../bench/table2_delay.pdb"
  "CMakeFiles/table2_delay.dir/table2_delay.cpp.o"
  "CMakeFiles/table2_delay.dir/table2_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
