file(REMOVE_RECURSE
  "../bench/ablation_library"
  "../bench/ablation_library.pdb"
  "CMakeFiles/ablation_library.dir/ablation_library.cpp.o"
  "CMakeFiles/ablation_library.dir/ablation_library.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
