# Empty compiler generated dependencies file for fig1a_distribution_points.
# This may be replaced when dependencies are built.
