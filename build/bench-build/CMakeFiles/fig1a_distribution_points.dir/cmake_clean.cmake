file(REMOVE_RECURSE
  "../bench/fig1a_distribution_points"
  "../bench/fig1a_distribution_points.pdb"
  "CMakeFiles/fig1a_distribution_points.dir/fig1a_distribution_points.cpp.o"
  "CMakeFiles/fig1a_distribution_points.dir/fig1a_distribution_points.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_distribution_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
