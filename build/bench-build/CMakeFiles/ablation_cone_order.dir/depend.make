# Empty dependencies file for ablation_cone_order.
# This may be replaced when dependencies are built.
