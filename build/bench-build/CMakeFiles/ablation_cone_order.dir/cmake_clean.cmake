file(REMOVE_RECURSE
  "../bench/ablation_cone_order"
  "../bench/ablation_cone_order.pdb"
  "CMakeFiles/ablation_cone_order.dir/ablation_cone_order.cpp.o"
  "CMakeFiles/ablation_cone_order.dir/ablation_cone_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cone_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
