# Empty dependencies file for lily_match.
# This may be replaced when dependencies are built.
