file(REMOVE_RECURSE
  "liblily_match.a"
)
