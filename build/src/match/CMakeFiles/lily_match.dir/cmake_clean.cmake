file(REMOVE_RECURSE
  "CMakeFiles/lily_match.dir/matcher.cpp.o"
  "CMakeFiles/lily_match.dir/matcher.cpp.o.d"
  "liblily_match.a"
  "liblily_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
