# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("library")
subdirs("subject")
subdirs("match")
subdirs("map")
subdirs("place")
subdirs("route")
subdirs("sta")
subdirs("lily")
subdirs("flow")
subdirs("circuits")
subdirs("opt")
