file(REMOVE_RECURSE
  "CMakeFiles/lily_netlist.dir/blif.cpp.o"
  "CMakeFiles/lily_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/lily_netlist.dir/network.cpp.o"
  "CMakeFiles/lily_netlist.dir/network.cpp.o.d"
  "CMakeFiles/lily_netlist.dir/simulate.cpp.o"
  "CMakeFiles/lily_netlist.dir/simulate.cpp.o.d"
  "CMakeFiles/lily_netlist.dir/sop.cpp.o"
  "CMakeFiles/lily_netlist.dir/sop.cpp.o.d"
  "liblily_netlist.a"
  "liblily_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
