# Empty compiler generated dependencies file for lily_netlist.
# This may be replaced when dependencies are built.
