file(REMOVE_RECURSE
  "liblily_netlist.a"
)
