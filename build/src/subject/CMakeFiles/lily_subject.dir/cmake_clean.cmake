file(REMOVE_RECURSE
  "CMakeFiles/lily_subject.dir/cones.cpp.o"
  "CMakeFiles/lily_subject.dir/cones.cpp.o.d"
  "CMakeFiles/lily_subject.dir/decompose.cpp.o"
  "CMakeFiles/lily_subject.dir/decompose.cpp.o.d"
  "CMakeFiles/lily_subject.dir/subject_graph.cpp.o"
  "CMakeFiles/lily_subject.dir/subject_graph.cpp.o.d"
  "liblily_subject.a"
  "liblily_subject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_subject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
