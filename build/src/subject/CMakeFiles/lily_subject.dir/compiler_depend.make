# Empty compiler generated dependencies file for lily_subject.
# This may be replaced when dependencies are built.
