file(REMOVE_RECURSE
  "liblily_subject.a"
)
