file(REMOVE_RECURSE
  "CMakeFiles/lily_map.dir/base_mapper.cpp.o"
  "CMakeFiles/lily_map.dir/base_mapper.cpp.o.d"
  "CMakeFiles/lily_map.dir/mapped_netlist.cpp.o"
  "CMakeFiles/lily_map.dir/mapped_netlist.cpp.o.d"
  "CMakeFiles/lily_map.dir/verilog.cpp.o"
  "CMakeFiles/lily_map.dir/verilog.cpp.o.d"
  "liblily_map.a"
  "liblily_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
