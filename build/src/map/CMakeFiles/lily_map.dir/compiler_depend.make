# Empty compiler generated dependencies file for lily_map.
# This may be replaced when dependencies are built.
