file(REMOVE_RECURSE
  "liblily_map.a"
)
