# Empty dependencies file for lily_place.
# This may be replaced when dependencies are built.
