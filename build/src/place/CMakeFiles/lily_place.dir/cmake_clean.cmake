file(REMOVE_RECURSE
  "CMakeFiles/lily_place.dir/netlist_adapters.cpp.o"
  "CMakeFiles/lily_place.dir/netlist_adapters.cpp.o.d"
  "CMakeFiles/lily_place.dir/pads.cpp.o"
  "CMakeFiles/lily_place.dir/pads.cpp.o.d"
  "CMakeFiles/lily_place.dir/quadratic.cpp.o"
  "CMakeFiles/lily_place.dir/quadratic.cpp.o.d"
  "CMakeFiles/lily_place.dir/rows.cpp.o"
  "CMakeFiles/lily_place.dir/rows.cpp.o.d"
  "liblily_place.a"
  "liblily_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
