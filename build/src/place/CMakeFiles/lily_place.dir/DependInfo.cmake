
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/netlist_adapters.cpp" "src/place/CMakeFiles/lily_place.dir/netlist_adapters.cpp.o" "gcc" "src/place/CMakeFiles/lily_place.dir/netlist_adapters.cpp.o.d"
  "/root/repo/src/place/pads.cpp" "src/place/CMakeFiles/lily_place.dir/pads.cpp.o" "gcc" "src/place/CMakeFiles/lily_place.dir/pads.cpp.o.d"
  "/root/repo/src/place/quadratic.cpp" "src/place/CMakeFiles/lily_place.dir/quadratic.cpp.o" "gcc" "src/place/CMakeFiles/lily_place.dir/quadratic.cpp.o.d"
  "/root/repo/src/place/rows.cpp" "src/place/CMakeFiles/lily_place.dir/rows.cpp.o" "gcc" "src/place/CMakeFiles/lily_place.dir/rows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lily_util.dir/DependInfo.cmake"
  "/root/repo/build/src/subject/CMakeFiles/lily_subject.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/lily_map.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/lily_match.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/lily_library.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/lily_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
