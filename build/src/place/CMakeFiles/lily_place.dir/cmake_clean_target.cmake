file(REMOVE_RECURSE
  "liblily_place.a"
)
