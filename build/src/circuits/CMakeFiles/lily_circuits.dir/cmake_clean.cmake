file(REMOVE_RECURSE
  "CMakeFiles/lily_circuits.dir/benchmarks.cpp.o"
  "CMakeFiles/lily_circuits.dir/benchmarks.cpp.o.d"
  "liblily_circuits.a"
  "liblily_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
