# Empty compiler generated dependencies file for lily_circuits.
# This may be replaced when dependencies are built.
