file(REMOVE_RECURSE
  "liblily_circuits.a"
)
