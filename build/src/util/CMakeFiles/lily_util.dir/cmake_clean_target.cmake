file(REMOVE_RECURSE
  "liblily_util.a"
)
