# Empty compiler generated dependencies file for lily_util.
# This may be replaced when dependencies are built.
