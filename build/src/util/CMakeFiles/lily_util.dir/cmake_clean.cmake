file(REMOVE_RECURSE
  "CMakeFiles/lily_util.dir/geometry.cpp.o"
  "CMakeFiles/lily_util.dir/geometry.cpp.o.d"
  "CMakeFiles/lily_util.dir/sparse.cpp.o"
  "CMakeFiles/lily_util.dir/sparse.cpp.o.d"
  "CMakeFiles/lily_util.dir/text.cpp.o"
  "CMakeFiles/lily_util.dir/text.cpp.o.d"
  "liblily_util.a"
  "liblily_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
