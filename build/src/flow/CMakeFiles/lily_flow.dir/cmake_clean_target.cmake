file(REMOVE_RECURSE
  "liblily_flow.a"
)
