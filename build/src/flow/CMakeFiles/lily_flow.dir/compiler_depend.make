# Empty compiler generated dependencies file for lily_flow.
# This may be replaced when dependencies are built.
