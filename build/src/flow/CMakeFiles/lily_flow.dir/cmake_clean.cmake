file(REMOVE_RECURSE
  "CMakeFiles/lily_flow.dir/flow.cpp.o"
  "CMakeFiles/lily_flow.dir/flow.cpp.o.d"
  "liblily_flow.a"
  "liblily_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
