# Empty dependencies file for lily_library.
# This may be replaced when dependencies are built.
