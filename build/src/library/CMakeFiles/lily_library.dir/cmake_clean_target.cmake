file(REMOVE_RECURSE
  "liblily_library.a"
)
