file(REMOVE_RECURSE
  "CMakeFiles/lily_library.dir/expr.cpp.o"
  "CMakeFiles/lily_library.dir/expr.cpp.o.d"
  "CMakeFiles/lily_library.dir/library.cpp.o"
  "CMakeFiles/lily_library.dir/library.cpp.o.d"
  "CMakeFiles/lily_library.dir/pattern.cpp.o"
  "CMakeFiles/lily_library.dir/pattern.cpp.o.d"
  "CMakeFiles/lily_library.dir/standard_cells.cpp.o"
  "CMakeFiles/lily_library.dir/standard_cells.cpp.o.d"
  "liblily_library.a"
  "liblily_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
