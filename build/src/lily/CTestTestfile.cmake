# CMake generated Testfile for 
# Source directory: /root/repo/src/lily
# Build directory: /root/repo/build/src/lily
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
