file(REMOVE_RECURSE
  "liblily_core.a"
)
