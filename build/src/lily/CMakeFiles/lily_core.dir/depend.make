# Empty dependencies file for lily_core.
# This may be replaced when dependencies are built.
