file(REMOVE_RECURSE
  "CMakeFiles/lily_core.dir/fanout_opt.cpp.o"
  "CMakeFiles/lily_core.dir/fanout_opt.cpp.o.d"
  "CMakeFiles/lily_core.dir/lily_mapper.cpp.o"
  "CMakeFiles/lily_core.dir/lily_mapper.cpp.o.d"
  "liblily_core.a"
  "liblily_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
