file(REMOVE_RECURSE
  "liblily_opt.a"
)
