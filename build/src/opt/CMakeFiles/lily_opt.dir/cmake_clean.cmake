file(REMOVE_RECURSE
  "CMakeFiles/lily_opt.dir/optimize.cpp.o"
  "CMakeFiles/lily_opt.dir/optimize.cpp.o.d"
  "CMakeFiles/lily_opt.dir/sop_algebra.cpp.o"
  "CMakeFiles/lily_opt.dir/sop_algebra.cpp.o.d"
  "liblily_opt.a"
  "liblily_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
