# Empty dependencies file for lily_opt.
# This may be replaced when dependencies are built.
