# Empty compiler generated dependencies file for lily_route.
# This may be replaced when dependencies are built.
