file(REMOVE_RECURSE
  "liblily_route.a"
)
