file(REMOVE_RECURSE
  "CMakeFiles/lily_route.dir/chip_area.cpp.o"
  "CMakeFiles/lily_route.dir/chip_area.cpp.o.d"
  "CMakeFiles/lily_route.dir/global_router.cpp.o"
  "CMakeFiles/lily_route.dir/global_router.cpp.o.d"
  "CMakeFiles/lily_route.dir/wire_models.cpp.o"
  "CMakeFiles/lily_route.dir/wire_models.cpp.o.d"
  "liblily_route.a"
  "liblily_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
