
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/gate_sizing.cpp" "src/sta/CMakeFiles/lily_sta.dir/gate_sizing.cpp.o" "gcc" "src/sta/CMakeFiles/lily_sta.dir/gate_sizing.cpp.o.d"
  "/root/repo/src/sta/timing.cpp" "src/sta/CMakeFiles/lily_sta.dir/timing.cpp.o" "gcc" "src/sta/CMakeFiles/lily_sta.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/map/CMakeFiles/lily_map.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/lily_place.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/lily_route.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/lily_match.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/lily_library.dir/DependInfo.cmake"
  "/root/repo/build/src/subject/CMakeFiles/lily_subject.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/lily_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lily_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
