file(REMOVE_RECURSE
  "liblily_sta.a"
)
