file(REMOVE_RECURSE
  "CMakeFiles/lily_sta.dir/gate_sizing.cpp.o"
  "CMakeFiles/lily_sta.dir/gate_sizing.cpp.o.d"
  "CMakeFiles/lily_sta.dir/timing.cpp.o"
  "CMakeFiles/lily_sta.dir/timing.cpp.o.d"
  "liblily_sta.a"
  "liblily_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lily_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
