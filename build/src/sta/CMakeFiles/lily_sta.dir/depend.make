# Empty dependencies file for lily_sta.
# This may be replaced when dependencies are built.
