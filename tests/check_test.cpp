// The checkers must stay quiet on healthy pipelines and loud on corrupted
// ones: each test deliberately breaks one invariant (a cycle, an off-chip
// cell, a functionally wrong cover...) and asserts the matching checker
// reports the right CheckIssue.
#include <gtest/gtest.h>

#include <array>

#include "check/mapped_checker.hpp"
#include "check/match_checker.hpp"
#include "check/network_checker.hpp"
#include "check/placement_checker.hpp"
#include "check/subject_checker.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "place/netlist_adapters.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

bool has_error(const CheckReport& rep, CheckStage stage, std::string_view needle) {
    for (const CheckIssue& i : rep.issues()) {
        if (i.severity == CheckSeverity::Error && i.stage == stage &&
            i.message.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

Network small_net() {
    Network net("small");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    const NodeId ab = net.make_and2(a, b);
    const NodeId y = net.make_xor2(ab, c);
    net.add_output("y", y);
    return net;
}

// ---- CheckReport ------------------------------------------------------

TEST(CheckReport, CountsAndThrow) {
    CheckReport rep;
    EXPECT_TRUE(rep.empty());
    EXPECT_NO_THROW(rep.throw_if_errors("ctx"));
    rep.warning(CheckStage::Network, 3, "just a smell");
    EXPECT_FALSE(rep.has_errors());
    EXPECT_NO_THROW(rep.throw_if_errors("ctx"));
    rep.error(CheckStage::Placement, 7, "off chip");
    EXPECT_EQ(rep.error_count(), 1u);
    EXPECT_EQ(rep.warning_count(), 1u);
    EXPECT_TRUE(rep.mentions("off chip"));
    EXPECT_THROW(rep.throw_if_errors("ctx"), std::logic_error);
    const std::string text = rep.to_string();
    EXPECT_NE(text.find("error [placement] node 7: off chip"), std::string::npos);
    EXPECT_NE(text.find("warning [network] node 3: just a smell"), std::string::npos);
}

TEST(CheckLevelParse, TextAndEnvFallback) {
    EXPECT_EQ(parse_check_level("off"), CheckLevel::Off);
    EXPECT_EQ(parse_check_level("Light"), CheckLevel::Light);
    EXPECT_EQ(parse_check_level("PARANOID"), CheckLevel::Paranoid);
    EXPECT_EQ(parse_check_level("bogus", CheckLevel::Light), CheckLevel::Light);
}

// ---- NetworkChecker ---------------------------------------------------

TEST(NetworkChecker, CleanNetworkHasNoIssues) {
    const CheckReport rep = NetworkChecker{}.check(small_net());
    EXPECT_FALSE(rep.has_errors());
    EXPECT_EQ(rep.warning_count(), 0u);
}

TEST(NetworkChecker, DetectsCycle) {
    Network net = small_net();
    // Point an early logic node's fanin at the last node: a back edge that
    // breaks the topological-order invariant standing in for acyclicity.
    const NodeId last = static_cast<NodeId>(net.node_count() - 1);
    const NodeId early = net.logic_nodes().front();
    net.node(early).fanins.push_back(last);
    const CheckReport rep = NetworkChecker{}.check(net);
    EXPECT_TRUE(has_error(rep, CheckStage::Network, "cycle"));
}

TEST(NetworkChecker, DetectsSelfLoop) {
    Network net = small_net();
    const NodeId early = net.logic_nodes().front();
    net.node(early).fanins.push_back(early);
    EXPECT_TRUE(has_error(NetworkChecker{}.check(net), CheckStage::Network, "self-loop"));
}

TEST(NetworkChecker, DetectsFanoutAsymmetry) {
    Network net = small_net();
    const NodeId y = net.logic_nodes().back();
    net.node(net.node(y).fanins.front()).fanouts.clear();  // drop the back edge
    EXPECT_TRUE(has_error(NetworkChecker{}.check(net), CheckStage::Network, "asymmetry"));
}

TEST(NetworkChecker, WarnsOnDanglingNode) {
    Network net = small_net();
    net.make_not(net.inputs().front(), "unused_inv");
    const CheckReport rep = NetworkChecker{}.check(net);
    EXPECT_FALSE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("dangling"));
}

TEST(NetworkChecker, DetectsDuplicateNames) {
    Network net = small_net();
    net.node(net.logic_nodes().front()).name = "a";  // collides with the PI
    EXPECT_TRUE(has_error(NetworkChecker{}.check(net), CheckStage::Network, "already used"));
}

TEST(NetworkChecker, DetectsSopOutOfBounds) {
    Network net = small_net();
    Node& y = net.node(net.logic_nodes().back());
    y.function.cubes.push_back(Cube::literal(13, true));  // node has 2 fanins
    EXPECT_TRUE(
        has_error(NetworkChecker{}.check(net), CheckStage::Network, "SOP references"));
}

// ---- SubjectChecker ---------------------------------------------------

TEST(SubjectChecker, CleanDecompositionPassesParanoid) {
    const Network net = make_symmetric9();
    const DecomposeResult sub = decompose(net);
    const CheckReport rep = SubjectChecker{}.check_against_source(sub.graph, net);
    EXPECT_FALSE(rep.has_errors()) << rep.to_string();
}

TEST(SubjectChecker, DetectsWrongDecomposition) {
    // Source computes AND(a, b); the "decomposition" computes NAND(a, b).
    Network net("src");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("y", net.make_and2(a, b));

    SubjectGraph g("wrong");
    const SubjectId sa = g.add_input("a", a);
    const SubjectId sb = g.add_input("b", b);
    g.add_output("y", g.add_nand(sa, sb));
    EXPECT_FALSE(SubjectChecker{}.check(g).has_errors());
    EXPECT_TRUE(has_error(SubjectChecker{}.check_against_source(g, net), CheckStage::Subject,
                          "not equivalent"));
}

TEST(SubjectChecker, DetectsBrokenFanoutEdge) {
    SubjectGraph g("broken");
    const SubjectId a = g.add_input("a", 0);
    const SubjectId b = g.add_input("b", 1);
    const SubjectId n = g.add_nand(a, b);
    g.add_output("y", n);
    // Corrupt: drop a's record of feeding n (tests need mutable access the
    // API deliberately withholds).
    const_cast<SubjectNode&>(g.node(a)).fanouts.clear();
    const CheckReport rep = SubjectChecker{}.check(g);
    EXPECT_TRUE(has_error(rep, CheckStage::Subject, "missing fanout edge"));
}

// ---- MatchChecker -----------------------------------------------------

struct MatchFixture {
    Library lib = load_msu_big();
    SubjectGraph g{"m"};
    SubjectId a = g.add_input("a", 0);
    SubjectId b = g.add_input("b", 1);
    SubjectId nand_ab = g.add_nand(a, b);
    SubjectId and_ab = g.add_inv(nand_ab);  // AND(a,b) as NAND+INV

    GateId find(const char* name) const {
        const auto id = lib.find(name);
        EXPECT_TRUE(id.has_value()) << name;
        return *id;
    }
};

TEST(MatchChecker, EveryGeneratedMatchVerifies) {
    MatchFixture f;
    f.g.add_output("y", f.and_ab);
    const CheckReport rep = MatchChecker(f.lib).check_all(f.g);
    EXPECT_TRUE(rep.empty()) << rep.to_string();
}

TEST(MatchChecker, DetectsWrongFunctionCover) {
    MatchFixture f;
    // Claim the NAND cone is an AND gate: structurally legal (same shape as
    // the and2 pattern minus the output inverter) but functionally wrong.
    Match m;
    m.gate = f.find("and2");
    m.pattern_index = 0;
    m.inputs = {f.a, f.b};
    m.covered = {f.nand_ab};
    EXPECT_FALSE(MatchChecker(f.lib).check(f.g, m).has_errors());
    EXPECT_TRUE(has_error(MatchChecker(f.lib).check_function(f.g, m), CheckStage::Match,
                          "not functionally equivalent"));
}

TEST(MatchChecker, DetectsUnclosedCover) {
    MatchFixture f;
    // and2 rooted at the INV but claiming only one input: the NAND's other
    // fanin is neither covered nor bound.
    Match m;
    m.gate = f.find("and2");
    m.pattern_index = 0;
    m.inputs = {f.a, f.a};
    m.covered = {f.nand_ab, f.and_ab};
    EXPECT_TRUE(
        has_error(MatchChecker(f.lib).check(f.g, m), CheckStage::Match, "not closed"));
}

TEST(MatchChecker, DetectsPinCountMismatch) {
    MatchFixture f;
    Match m;
    m.gate = f.find("inv1");
    m.pattern_index = 0;
    m.inputs = {f.a, f.b};  // inverter has one pin
    m.covered = {f.nand_ab};
    EXPECT_TRUE(has_error(MatchChecker(f.lib).check(f.g, m), CheckStage::Match, "pins"));
}

TEST(MatchChecker, DetectsInputCoveredOverlap) {
    MatchFixture f;
    Match m;
    m.gate = f.find("inv1");
    m.pattern_index = 0;
    m.inputs = {f.nand_ab};
    m.covered = {f.nand_ab};  // same node bound and covered: a loop
    EXPECT_TRUE(has_error(MatchChecker(f.lib).check(f.g, m), CheckStage::Match,
                          "both a bound input and covered"));
}

// ---- PlacementChecker -------------------------------------------------

struct PlacementFixture {
    PlacementNetlist nl;
    Rect region{{-10.0, -10.0}, {10.0, 10.0}};

    PlacementFixture() {
        nl.n_cells = 4;
        nl.cell_area = {1.0, 1.0, 2.0, 2.0};
        nl.pad_positions = {{-10.0, 0.0}, {10.0, 0.0}};
        PlacementNetlist::Net net;
        net.cells = {0, 1, 2, 3};
        net.pads = {0, 1};
        nl.nets.push_back(net);
    }
};

TEST(PlacementChecker, CleanGlobalAndDetailedPass) {
    PlacementFixture f;
    const GlobalPlacement gp = place_global(f.nl, f.region);
    const DetailedPlacement dp = legalize_rows(f.nl, gp);
    const PlacementChecker checker;
    EXPECT_FALSE(checker.check_global(f.nl, gp).has_errors());
    EXPECT_FALSE(checker.check_detailed(f.nl, dp).has_errors());
    EXPECT_FALSE(checker.check_pads(place_pads(f.nl, f.region), f.region).has_errors());
}

TEST(PlacementChecker, DetectsOutOfRegionPosition) {
    PlacementFixture f;
    GlobalPlacement gp = place_global(f.nl, f.region);
    gp.positions[2] = {1e6, -3.0};
    EXPECT_TRUE(has_error(PlacementChecker{}.check_global(f.nl, gp), CheckStage::Placement,
                          "outside region"));
}

TEST(PlacementChecker, DetectsNonFinitePosition) {
    PlacementFixture f;
    GlobalPlacement gp = place_global(f.nl, f.region);
    gp.positions[0].x = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(has_error(PlacementChecker{}.check_global(f.nl, gp), CheckStage::Placement,
                          "not finite"));
}

TEST(PlacementChecker, DetectsRowMisalignment) {
    PlacementFixture f;
    const GlobalPlacement gp = place_global(f.nl, f.region);
    DetailedPlacement dp = legalize_rows(f.nl, gp);
    dp.positions[1].y += dp.region.height() / 3.0;  // knock the cell off its row
    EXPECT_TRUE(has_error(PlacementChecker{}.check_detailed(f.nl, dp), CheckStage::Placement,
                          "not aligned to row"));
    dp = legalize_rows(f.nl, gp);
    dp.row_of[0] = 99;
    EXPECT_TRUE(has_error(PlacementChecker{}.check_detailed(f.nl, dp), CheckStage::Placement,
                          "out of range"));
}

TEST(PlacementChecker, DetectsPadOffBoundary) {
    PlacementFixture f;
    std::vector<Point> pads = place_pads(f.nl, f.region);
    pads[0] = f.region.center();
    EXPECT_TRUE(has_error(PlacementChecker{}.check_pads(pads, f.region), CheckStage::Placement,
                          "not on the region boundary"));
}

TEST(PlacementChecker, DetectsBadNetIndices) {
    PlacementFixture f;
    f.nl.nets[0].cells.push_back(17);
    EXPECT_TRUE(has_error(PlacementChecker{}.check_netlist(f.nl), CheckStage::Placement,
                          "references cell"));
}

// ---- MappedChecker ----------------------------------------------------

struct MappedFixture {
    Library lib = load_msu_big();
    Network net = small_net();
    DecomposeResult sub = decompose(net);
    MapResult mapped = BaseMapper(lib).map(sub.graph);
};

TEST(MappedChecker, CleanMappingPassesParanoid) {
    MappedFixture f;
    const CheckReport rep = MappedChecker(f.lib).check_against(f.mapped.netlist, f.net);
    EXPECT_FALSE(rep.has_errors()) << rep.to_string();
}

TEST(MappedChecker, DetectsWrongFunctionCover) {
    MappedFixture f;
    // Swap one instance's gate for a same-arity gate with a different truth
    // table: structure stays legal, the function changes.
    bool swapped = false;
    for (GateInstance& inst : f.mapped.netlist.gates) {
        const Gate& current = f.lib.gate(inst.gate);
        for (GateId g = 0; g < f.lib.size() && !swapped; ++g) {
            if (g != inst.gate && f.lib.gate(g).n_inputs() == current.n_inputs() &&
                !(f.lib.gate(g).function == current.function)) {
                inst.gate = g;
                swapped = true;
            }
        }
        if (swapped) break;
    }
    ASSERT_TRUE(swapped);
    const MappedChecker checker(f.lib);
    EXPECT_FALSE(checker.check(f.mapped.netlist).has_errors());  // structure still fine
    EXPECT_TRUE(has_error(checker.check_against(f.mapped.netlist, f.net), CheckStage::Mapped,
                          "not equivalent"));
}

TEST(MappedChecker, DetectsDoubleDriverAndUndrivenPin) {
    MappedFixture f;
    MappedNetlist broken = f.mapped.netlist;
    broken.gates.push_back(broken.gates.back());
    EXPECT_TRUE(
        has_error(MappedChecker(f.lib).check(broken), CheckStage::Mapped, "driven twice"));

    broken = f.mapped.netlist;
    broken.gates.back().inputs[0] = 4095;  // no such signal
    EXPECT_TRUE(has_error(MappedChecker(f.lib).check(broken), CheckStage::Mapped,
                          "neither a subject input nor driven"));
}

TEST(MappedChecker, TimingMonotonicityAndLoads) {
    MappedFixture f;
    MappedPlacementView view = make_placement_view(f.mapped.netlist, f.lib);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = place_pads(view.netlist, region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    TimingReport timing = analyze_timing(f.mapped.netlist, f.lib, view, gp.positions);

    const MappedChecker checker(f.lib);
    EXPECT_FALSE(checker.check_timing(f.mapped.netlist, timing).has_errors());

    TimingReport negative = timing;
    negative.arrival.back() = {-1.0, -1.0};
    EXPECT_TRUE(has_error(checker.check_timing(f.mapped.netlist, negative), CheckStage::Mapped,
                          "negative arrival"));

    // Zeroing a sink's arrival while its driver keeps a later one breaks
    // monotonicity (only when some instance feeds another one).
    bool has_internal_edge = false;
    TimingReport frozen = timing;
    for (std::size_t i = 0; i < f.mapped.netlist.gates.size() && !has_internal_edge; ++i) {
        for (const SubjectId in : f.mapped.netlist.gates[i].inputs) {
            const std::size_t src = f.mapped.netlist.instance_driving(in);
            if (src != MappedNetlist::npos && frozen.arrival[src].worst() > 0.0) {
                frozen.arrival[i] = {0.0, 0.0};
                has_internal_edge = true;
                break;
            }
        }
    }
    ASSERT_TRUE(has_internal_edge);
    EXPECT_TRUE(has_error(checker.check_timing(f.mapped.netlist, frozen), CheckStage::Mapped,
                          "monotonicity"));

    TimingReport light_load = timing;
    light_load.load.assign(light_load.load.size(), 0.0);
    EXPECT_TRUE(has_error(checker.check_timing(f.mapped.netlist, light_load),
                          CheckStage::Mapped, "below the connected pin capacitance"));
}

// ---- Flow integration -------------------------------------------------

TEST(FlowCheck, ParanoidPipelinesStayQuiet) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(8);
    FlowOptions opts;
    opts.check = CheckLevel::Paranoid;
    EXPECT_NO_THROW(run_baseline_flow(net, lib, opts));
    EXPECT_NO_THROW(run_lily_flow(net, lib, opts));
    opts.objective = MapObjective::Delay;
    EXPECT_NO_THROW(run_baseline_flow(net, lib, opts));
    EXPECT_NO_THROW(run_lily_flow(net, lib, opts));
}

}  // namespace
}  // namespace lily
