#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "subject/cones.hpp"
#include "subject/decompose.hpp"
#include "subject/subject_graph.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

Network full_adder() {
    Network n("fa");
    const NodeId a = n.add_input("a");
    const NodeId b = n.add_input("b");
    const NodeId cin = n.add_input("cin");
    const NodeId axb = n.make_xor2(a, b);
    const NodeId sum = n.make_xor2(axb, cin);
    const NodeId ab = n.make_and2(a, b);
    const NodeId c_axb = n.make_and2(axb, cin);
    const NodeId cout = n.make_or2(ab, c_axb);
    n.add_output("sum", sum);
    n.add_output("cout", cout);
    return n;
}

/// Random multi-level network over `n_pi` inputs with `n_gates` gates.
Network random_network(std::uint64_t seed, unsigned n_pi = 8, unsigned n_gates = 40) {
    Rng rng(seed);
    Network net("rand" + std::to_string(seed));
    std::vector<NodeId> pool;
    for (unsigned i = 0; i < n_pi; ++i) pool.push_back(net.add_input("pi" + std::to_string(i)));
    for (unsigned i = 0; i < n_gates; ++i) {
        const unsigned k = 2 + static_cast<unsigned>(rng.next_below(3));
        std::vector<NodeId> ins;
        for (unsigned j = 0; j < k; ++j) {
            ins.push_back(pool[rng.next_below(pool.size())]);
        }
        std::sort(ins.begin(), ins.end());
        ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
        NodeId g;
        switch (rng.next_below(5)) {
            case 0: g = net.make_and(ins); break;
            case 1: g = net.make_or(ins); break;
            case 2: g = net.make_nand(ins); break;
            case 3: g = net.make_nor(ins); break;
            default: g = net.make_xor(ins); break;
        }
        pool.push_back(g);
    }
    for (unsigned i = 0; i < 4; ++i) {
        net.add_output("po" + std::to_string(i), pool[pool.size() - 1 - i]);
    }
    net.sweep();
    return net;
}

// ----------------------------------------------------------- subject graph

TEST(SubjectGraph, InverterChainsKeptByDefault) {
    // Period-accurate default: INV(INV(x)) stays structural.
    SubjectGraph g;
    const SubjectId a = g.add_input("a", 0);
    const SubjectId s = g.add_inv(g.add_inv(a));
    g.add_output("f", s);
    EXPECT_EQ(g.gate_count(), 2u);
    EXPECT_EQ(g.depth(), 2u);
}

TEST(SubjectGraph, StructuralHashingSharesNodes) {
    SubjectGraph g;
    const SubjectId a = g.add_input("a", 0);
    const SubjectId b = g.add_input("b", 1);
    const SubjectId n1 = g.add_nand(a, b);
    const SubjectId n2 = g.add_nand(b, a);  // commuted -> same node
    EXPECT_EQ(n1, n2);
    const SubjectId i1 = g.add_inv(n1);
    const SubjectId i2 = g.add_inv(n1);
    EXPECT_EQ(i1, i2);
    EXPECT_EQ(g.gate_count(), 2u);
}

TEST(SubjectGraph, FanoutBookkeeping) {
    SubjectGraph g;
    const SubjectId a = g.add_input("a", 0);
    const SubjectId b = g.add_input("b", 1);
    const SubjectId n1 = g.add_nand(a, b);
    const SubjectId i1 = g.add_inv(n1);
    g.add_output("f", i1);
    g.check();
    EXPECT_EQ(g.node(a).fanouts.size(), 1u);
    EXPECT_EQ(g.node(n1).fanouts.size(), 1u);
    EXPECT_TRUE(g.drives_output(i1));
    EXPECT_FALSE(g.drives_output(n1));
    EXPECT_FALSE(g.is_multi_fanout(a));
    g.add_nand(a, i1);
    EXPECT_TRUE(g.is_multi_fanout(a));
}

TEST(SubjectGraph, NandOfSameSignal) {
    SubjectGraph g;
    const SubjectId a = g.add_input("a", 0);
    const SubjectId n = g.add_nand(a, a);  // acts as inverter
    g.add_output("f", n);
    g.check();
    EXPECT_EQ(g.node(a).fanouts.size(), 2u);  // two parallel lines
    const Network net = g.to_network();
    const auto v = simulate_block(net, std::array<std::uint64_t, 1>{0b10});
    EXPECT_EQ(v[net.outputs()[0].driver] & 0b11, 0b01u);
}

TEST(SubjectGraph, InverterChainsCancel) {
    SubjectGraph g("subject", /*cancel_inverter_pairs=*/true);
    const SubjectId a = g.add_input("a", 0);
    SubjectId s = a;
    for (int i = 0; i < 5; ++i) s = g.add_inv(s);
    // Odd count: one surviving inverter; INV(INV(x)) folds to x.
    g.add_output("f", s);
    EXPECT_EQ(g.gate_count(), 1u);
    EXPECT_EQ(g.depth(), 1u);
    EXPECT_EQ(g.add_inv(s), a);  // even count folds all the way back
}

// -------------------------------------------------------------- decompose

TEST(Decompose, FullAdderEquivalent) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    r.graph.check();
    EXPECT_TRUE(equivalent_random(net, r.graph.to_network(), 8, 11));
    // All gates are NAND2/INV.
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        const auto k = r.graph.node(v).kind;
        EXPECT_TRUE(k == SubjectKind::Input || k == SubjectKind::Inv || k == SubjectKind::Nand2);
    }
}

TEST(Decompose, SignalOfCoversAllNodes) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    for (NodeId id = 0; id < net.node_count(); ++id) {
        EXPECT_NE(r.signal_of[id], kNullSubject);
    }
}

TEST(Decompose, ShapesAllEquivalent) {
    const Network net = random_network(3);
    for (const TreeShape shape : {TreeShape::Balanced, TreeShape::LeftDeep}) {
        DecomposeOptions opts;
        opts.shape = shape;
        const DecomposeResult r = decompose(net, opts);
        EXPECT_TRUE(equivalent_random(net, r.graph.to_network(), 16, 5))
            << static_cast<int>(shape);
    }
}

TEST(Decompose, ProximityShapeEquivalentAndUsesPositions) {
    const Network net = random_network(4);
    DecomposeOptions opts;
    opts.shape = TreeShape::Proximity;
    Rng rng(9);
    opts.source_positions.resize(net.node_count());
    for (auto& p : opts.source_positions) p = {rng.next_double(0, 100), rng.next_double(0, 100)};
    const DecomposeResult r = decompose(net, opts);
    EXPECT_TRUE(equivalent_random(net, r.graph.to_network(), 16, 5));
}

TEST(Decompose, ProximityWithoutPositionsFallsBackToBalanced) {
    const Network net = random_network(5);
    DecomposeOptions prox;
    prox.shape = TreeShape::Proximity;
    const DecomposeResult a = decompose(net, prox);
    const DecomposeResult b = decompose(net);
    EXPECT_EQ(a.graph.size(), b.graph.size());
}

TEST(Decompose, BalancedShallowerThanLeftDeep) {
    // Wide AND: balanced depth ~ 2*log2(k), left-deep ~ 2*k.
    Network net("wide");
    std::vector<NodeId> ins;
    for (int i = 0; i < 16; ++i) ins.push_back(net.add_input("i" + std::to_string(i)));
    net.add_output("f", net.make_and(ins));
    DecomposeOptions deep;
    deep.shape = TreeShape::LeftDeep;
    const auto balanced = decompose(net);
    const auto leftdeep = decompose(net, deep);
    EXPECT_LT(balanced.graph.depth(), leftdeep.graph.depth());
    EXPECT_TRUE(equivalent_random(balanced.graph.to_network(), leftdeep.graph.to_network(), 8, 3));
}

TEST(Decompose, ConstantNodeRejected) {
    Network net("c");
    net.add_input("a");
    net.add_output("f", net.make_const(true));
    EXPECT_THROW(decompose(net), std::invalid_argument);
}

TEST(Decompose, BufferAliasesSignal) {
    Network net("buf");
    const NodeId a = net.add_input("a");
    const NodeId b = net.make_buf(a);
    net.add_output("f", b);
    const DecomposeResult r = decompose(net);
    EXPECT_EQ(r.signal_of[b], r.signal_of[a]);  // no gate inserted
    EXPECT_EQ(r.graph.gate_count(), 0u);
}

TEST(Decompose, RandomNetworksEquivalentSweep) {
    for (std::uint64_t seed = 10; seed < 18; ++seed) {
        const Network net = random_network(seed);
        const DecomposeResult r = decompose(net);
        EXPECT_TRUE(equivalent_random(net, r.graph.to_network(), 8, seed)) << seed;
    }
}

// ------------------------------------------------------------------- cones

TEST(Cones, OnePerDistinctDriver) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    const auto cones = logic_cones(r.graph);
    EXPECT_EQ(cones.size(), 2u);
    for (const Cone& c : cones) {
        EXPECT_FALSE(c.members.empty());
        EXPECT_EQ(c.members.back(), c.root);  // topological order, root last
    }
}

TEST(Cones, MembersAreTransitiveFanin) {
    const Network net = random_network(21);
    const DecomposeResult r = decompose(net);
    const auto cones = logic_cones(r.graph);
    for (const Cone& c : cones) {
        std::vector<bool> in(r.graph.size(), false);
        for (SubjectId v : c.members) in[v] = true;
        for (SubjectId v : c.members) {
            const SubjectNode& n = r.graph.node(v);
            for (unsigned k = 0; k < n.fanin_count(); ++k) EXPECT_TRUE(in[n.fanin(k)]);
        }
    }
}

TEST(Cones, ExitLineMatrixDiagonalZeroAndCounts) {
    // Two cones sharing a subgraph: f = and(a,b), g = and(and(a,b), c).
    Network net("share");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    const NodeId ab = net.make_and2(a, b);
    const NodeId abc = net.make_and2(ab, c);
    net.add_output("f", ab);
    net.add_output("g", abc);
    const DecomposeResult r = decompose(net);
    const auto cones = logic_cones(r.graph);
    ASSERT_EQ(cones.size(), 2u);
    const auto m = exit_line_matrix(r.graph, cones);
    EXPECT_EQ(m[0][0], 0u);
    EXPECT_EQ(m[1][1], 0u);
    // Cone of f exits into cone of g (ab feeds abc), not vice versa.
    const std::size_t fi = cones[0].po_name == "f" ? 0 : 1;
    const std::size_t gi = 1 - fi;
    EXPECT_GT(m[fi][gi], 0u);
    EXPECT_EQ(m[gi][fi], 0u);
}

TEST(Cones, GreedyOrderingNoWorseThanIdentity) {
    for (std::uint64_t seed = 30; seed < 36; ++seed) {
        const Network net = random_network(seed, 10, 60);
        const DecomposeResult r = decompose(net);
        const auto cones = logic_cones(r.graph);
        const auto m = exit_line_matrix(r.graph, cones);
        const auto greedy = order_cones(r.graph, cones);
        std::vector<std::size_t> identity(cones.size());
        for (std::size_t i = 0; i < cones.size(); ++i) identity[i] = i;
        EXPECT_LE(ordering_cost(m, greedy), ordering_cost(m, identity)) << seed;
        // Greedy result is a permutation.
        auto sorted = greedy;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, identity);
    }
}

// ------------------------------------------------------------------- trees

TEST(Trees, PartitionCoversEveryGateOnce) {
    const Network net = random_network(40);
    const DecomposeResult r = decompose(net);
    const TreePartition part = partition_trees(r.graph);
    std::vector<int> count(r.graph.size(), 0);
    for (const auto& tree : part.trees) {
        for (SubjectId v : tree) {
            ++count[v];
            EXPECT_NE(r.graph.node(v).kind, SubjectKind::Input);
        }
    }
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        if (r.graph.node(v).kind == SubjectKind::Input) {
            EXPECT_EQ(count[v], 0) << v;
        } else {
            EXPECT_EQ(count[v], 1) << v;
        }
    }
}

TEST(Trees, NonRootMembersAreSingleFanoutInternal) {
    const Network net = random_network(41);
    const DecomposeResult r = decompose(net);
    const TreePartition part = partition_trees(r.graph);
    for (std::size_t t = 0; t < part.trees.size(); ++t) {
        const auto& tree = part.trees[t];
        const SubjectId root = tree.back();
        for (SubjectId v : tree) {
            if (v == root) continue;
            // Internal tree nodes have exactly one fanout, inside this tree.
            EXPECT_EQ(r.graph.node(v).fanouts.size(), 1u);
            EXPECT_EQ(part.tree_of[r.graph.node(v).fanouts[0]], t);
            EXPECT_FALSE(r.graph.drives_output(v));
        }
    }
}

TEST(Trees, RootsAreOutputsOrMultiFanout) {
    const Network net = random_network(42);
    const DecomposeResult r = decompose(net);
    const TreePartition part = partition_trees(r.graph);
    for (const auto& tree : part.trees) {
        const SubjectId root = tree.back();
        const SubjectNode& n = r.graph.node(root);
        EXPECT_TRUE(r.graph.drives_output(root) || n.fanouts.size() != 1);
    }
}

}  // namespace
}  // namespace lily
