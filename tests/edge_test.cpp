// Robustness edges: degenerate inputs every module must survive without
// undefined behaviour — empty circuits, single-gate circuits, nets with no
// pins, regions with no cells.
#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "opt/optimize.hpp"
#include "route/global_router.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

TEST(Edge, EmptyNetworkDecomposes) {
    Network net("empty");
    net.add_input("a");
    const DecomposeResult r = decompose(net);
    EXPECT_EQ(r.graph.gate_count(), 0u);
    EXPECT_EQ(r.graph.inputs().size(), 1u);
    EXPECT_TRUE(logic_cones(r.graph).empty());
    EXPECT_TRUE(partition_trees(r.graph).trees.empty());
}

TEST(Edge, WireOnlyCircuitThroughFlow) {
    // A circuit with no logic at all: PO = PI.
    Network net("wire");
    const NodeId a = net.add_input("a");
    net.add_output("f", a);
    const Library lib = load_msu_big();
    const DecomposeResult sub = decompose(net);
    const LilyResult res = LilyMapper(lib).map(sub.graph);
    EXPECT_EQ(res.netlist.gate_count(), 0u);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 4, 1));
    // The full pipeline also survives (placement/routing of zero cells).
    const FlowResult flow = run_lily_flow(net, lib);
    EXPECT_EQ(flow.metrics.gate_count, 0u);
}

TEST(Edge, SingleGateCircuitThroughBothFlows) {
    Network net("one");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("f", net.make_nand(std::array{a, b}));
    const Library lib = load_msu_tiny();
    const FlowResult base = run_baseline_flow(net, lib);
    const FlowResult lily = run_lily_flow(net, lib);
    // Period-accurate subject graphs wrap the NAND in an inverter pair, so
    // the cover is a NAND plus a buffer (or two inverters); with
    // cancel_inverter_pairs a single nand2 suffices.
    EXPECT_LE(base.metrics.gate_count, 3u);
    EXPECT_LE(lily.metrics.gate_count, 3u);
    EXPECT_TRUE(equivalent_random(net, lily.netlist.to_network(lib), 4, 2));
    DecomposeOptions clean;
    clean.cancel_inverter_pairs = true;
    const DecomposeResult sub = decompose(net, clean);
    const LilyResult direct = LilyMapper(lib).map(sub.graph);
    EXPECT_EQ(direct.netlist.gate_count(), 1u);
}

TEST(Edge, RouterWithNoNets) {
    PlacementNetlist nl;
    nl.n_cells = 3;
    nl.cell_area.assign(3, 1.0);
    const std::vector<Point> pos(3, Point{1, 1});
    const RouteResult r = route_global(nl, pos, Rect({0, 0}, {8, 8}), {});
    EXPECT_EQ(r.total_wirelength, 0.0);
    EXPECT_EQ(r.total_overflow, 0.0);
    EXPECT_EQ(r.mazed_connections, 0u);
}

TEST(Edge, PlacementWithZeroCells) {
    PlacementNetlist nl;
    const Rect region({0, 0}, {4, 4});
    const GlobalPlacement gp = place_global(nl, region);
    EXPECT_TRUE(gp.positions.empty());
    DetailedPlacement dp = legalize_rows(nl, gp);
    EXPECT_EQ(dp.n_rows, 0u);
    EXPECT_EQ(improve_rows(nl, dp), 0u);
}

TEST(Edge, PadPlacementWithNoPads) {
    PlacementNetlist nl;
    nl.n_cells = 2;
    nl.cell_area.assign(2, 1.0);
    EXPECT_TRUE(place_pads(nl, Rect({0, 0}, {4, 4})).empty());
}

TEST(Edge, BlifMinimalModel) {
    const Network net = read_blif(".model m\n.inputs a\n.outputs a\n.end\n");
    EXPECT_EQ(net.inputs().size(), 1u);
    const std::string round = write_blif(net);
    EXPECT_TRUE(equivalent_random(net, read_blif(round), 4, 3));
}

TEST(Edge, OptimizeEmptyAndTrivial) {
    Network net("t");
    const NodeId a = net.add_input("a");
    net.add_output("f", net.make_not(a));
    OptimizeStats stats;
    const Network out = optimize(net, {}, &stats);
    EXPECT_TRUE(equivalent_random(net, out, 4, 4));
    EXPECT_EQ(stats.literals_after, 1u);
}

TEST(Edge, SingleCubeWideGateMaps) {
    // 12-input AND: wider than any library gate; the mapper must chain.
    Network net("wide");
    std::vector<NodeId> ins;
    for (int i = 0; i < 12; ++i) ins.push_back(net.add_input("i" + std::to_string(i)));
    net.add_output("f", net.make_and(ins));
    const Library lib = load_msu_big();
    const DecomposeResult sub = decompose(net);
    const LilyResult res = LilyMapper(lib).map(sub.graph);
    EXPECT_GT(res.netlist.gate_count(), 1u);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 5));
}

TEST(Edge, DuplicatePoDrivers) {
    // Several POs sharing one driver: one cone, several pads.
    Network net("dup");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId g = net.make_or2(a, b);
    net.add_output("f1", g);
    net.add_output("f2", g);
    net.add_output("f3", g);
    const Library lib = load_msu_big();
    const DecomposeResult sub = decompose(net);
    EXPECT_EQ(logic_cones(sub.graph).size(), 1u);
    const FlowResult flow = run_lily_flow(net, lib);
    EXPECT_TRUE(equivalent_random(net, flow.netlist.to_network(lib), 4, 6));
}

}  // namespace
}  // namespace lily
