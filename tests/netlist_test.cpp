#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "netlist/network.hpp"
#include "netlist/simulate.hpp"
#include "netlist/sop.hpp"

namespace lily {
namespace {

// --------------------------------------------------------------------- sop

TEST(Sop, CubeEval) {
    const Cube c = Cube::literal(2, true);
    EXPECT_TRUE(c.eval(0b100));
    EXPECT_FALSE(c.eval(0b011));
    EXPECT_EQ(c.literal_count(), 1u);
}

TEST(Sop, Constants) {
    const Sop zero = Sop::constant(false);
    const Sop one = Sop::constant(true);
    EXPECT_TRUE(zero.is_constant());
    EXPECT_FALSE(zero.constant_value());
    EXPECT_TRUE(one.is_constant());
    EXPECT_TRUE(one.constant_value());
    EXPECT_FALSE(zero.eval(0));
    EXPECT_TRUE(one.eval(0));
}

TEST(Sop, GateFamilies) {
    const Sop a2 = Sop::and_n(2);
    EXPECT_TRUE(a2.eval(0b11));
    EXPECT_FALSE(a2.eval(0b10));
    const Sop o3 = Sop::or_n(3);
    EXPECT_TRUE(o3.eval(0b100));
    EXPECT_FALSE(o3.eval(0b000));
    const Sop na2 = Sop::nand_n(2);
    EXPECT_FALSE(na2.eval(0b11));
    EXPECT_TRUE(na2.eval(0b01));
    const Sop no2 = Sop::nor_n(2);
    EXPECT_TRUE(no2.eval(0b00));
    EXPECT_FALSE(no2.eval(0b10));
}

TEST(Sop, XorFamilies) {
    const Sop x3 = Sop::xor_n(3);
    for (std::uint64_t m = 0; m < 8; ++m) {
        EXPECT_EQ(x3.eval(m), std::popcount(m) % 2 == 1) << m;
    }
    const Sop xn2 = Sop::xnor_n(2);
    EXPECT_TRUE(xn2.eval(0b00));
    EXPECT_TRUE(xn2.eval(0b11));
    EXPECT_FALSE(xn2.eval(0b01));
    EXPECT_THROW(Sop::xor_n(11), std::invalid_argument);
}

TEST(Sop, RemapPermutesLiterals) {
    // f = x0 & !x1 remapped with map {2, 0} -> x2 & !x0.
    Sop f;
    Cube c;
    c.care = 0b11;
    c.polarity = 0b01;
    f.cubes.push_back(c);
    const std::array<unsigned, 2> map{2, 0};
    const Sop g = f.remapped(map);
    EXPECT_TRUE(g.eval(0b100));
    EXPECT_FALSE(g.eval(0b101));
    EXPECT_FALSE(g.eval(0b000));
}

TEST(Sop, LiteralAndFaninCounts) {
    Sop f = Sop::and_n(3);
    EXPECT_EQ(f.literal_count(), 3u);
    EXPECT_EQ(f.max_fanin_index(), 3u);
    EXPECT_EQ(Sop::constant(true).max_fanin_index(), 0u);
}

// ------------------------------------------------------------- truth table

TEST(TruthTable, FromSopMatchesEval) {
    const Sop f = Sop::xor_n(3);
    const TruthTable t = TruthTable::from_sop(f, 3);
    for (std::size_t m = 0; m < 8; ++m) EXPECT_EQ(t.get(m), f.eval(m));
}

TEST(TruthTable, Operators) {
    const TruthTable a = TruthTable::variable(0, 2);
    const TruthTable b = TruthTable::variable(1, 2);
    const TruthTable x = a ^ b;
    EXPECT_EQ(x, TruthTable::from_sop(Sop::xor_n(2), 2));
    EXPECT_EQ(a & b, TruthTable::from_sop(Sop::and_n(2), 2));
    EXPECT_EQ(a | b, TruthTable::from_sop(Sop::or_n(2), 2));
    EXPECT_EQ(~(a & b), TruthTable::from_sop(Sop::nand_n(2), 2));
}

TEST(TruthTable, ConstantsAndCounting) {
    const TruthTable t(3);
    EXPECT_TRUE(t.is_constant());
    EXPECT_EQ(t.count_ones(), 0u);
    const TruthTable ones = ~t;
    EXPECT_TRUE(ones.is_constant());
    EXPECT_EQ(ones.count_ones(), 8u);
    EXPECT_FALSE(TruthTable::variable(1, 3).is_constant());
}

TEST(TruthTable, HexRoundTripKnownValues) {
    // x0 over 2 vars: minterms 1 and 3 -> bits 1010 -> 0xa.
    EXPECT_EQ(TruthTable::variable(0, 2).to_hex(), "a");
    EXPECT_EQ(TruthTable::variable(1, 2).to_hex(), "c");
    const TruthTable v8 = TruthTable::variable(0, 8);
    EXPECT_EQ(v8.n_minterms(), 256u);
    EXPECT_EQ(v8.to_hex().size(), 64u);
}

TEST(TruthTable, RejectsTooManyVars) {
    EXPECT_THROW(TruthTable t(17), std::invalid_argument);
}

// ----------------------------------------------------------------- network

Network full_adder() {
    Network n("fa");
    const NodeId a = n.add_input("a");
    const NodeId b = n.add_input("b");
    const NodeId cin = n.add_input("cin");
    const NodeId axb = n.make_xor2(a, b);
    const NodeId sum = n.make_xor2(axb, cin);
    const NodeId ab = n.make_and2(a, b);
    const NodeId c_axb = n.make_and2(axb, cin);
    const NodeId cout = n.make_or2(ab, c_axb);
    n.add_output("sum", sum);
    n.add_output("cout", cout);
    return n;
}

TEST(Network, FullAdderStructure) {
    const Network n = full_adder();
    n.check();
    EXPECT_EQ(n.inputs().size(), 3u);
    EXPECT_EQ(n.outputs().size(), 2u);
    EXPECT_EQ(n.logic_node_count(), 5u);
    EXPECT_EQ(n.depth(), 3u);
    EXPECT_EQ(n.max_fanin(), 2u);
}

TEST(Network, FullAdderSimulatesCorrectly) {
    const Network n = full_adder();
    // Exhaustive 8 patterns in one 64-bit block.
    std::array<std::uint64_t, 3> ins{};
    for (std::uint64_t m = 0; m < 8; ++m) {
        for (unsigned i = 0; i < 3; ++i) {
            if ((m >> i) & 1) ins[i] |= std::uint64_t{1} << m;
        }
    }
    const auto v = simulate_block(n, ins);
    for (std::uint64_t m = 0; m < 8; ++m) {
        const unsigned total = static_cast<unsigned>(std::popcount(m));
        const bool sum = (v[n.outputs()[0].driver] >> m) & 1;
        const bool cout = (v[n.outputs()[1].driver] >> m) & 1;
        EXPECT_EQ(sum, total % 2 == 1) << m;
        EXPECT_EQ(cout, total >= 2) << m;
    }
}

TEST(Network, DuplicateNamesRejected) {
    Network n;
    n.add_input("a");
    EXPECT_THROW(n.add_input("a"), std::invalid_argument);
    EXPECT_THROW(n.add_node("a", {}, Sop::constant(false)), std::invalid_argument);
}

TEST(Network, BadFaninsRejected) {
    Network n;
    const NodeId a = n.add_input("a");
    EXPECT_THROW(n.add_node("x", {static_cast<NodeId>(99)}, Sop::identity()),
                 std::invalid_argument);
    // SOP referencing fanin 1 with only one fanin present.
    EXPECT_THROW(n.add_node("y", {a}, Sop::single_literal(1, true)), std::invalid_argument);
}

TEST(Network, FindNodeAndAutoNames) {
    Network n;
    const NodeId a = n.add_input("a");
    const NodeId g = n.make_not(a);
    EXPECT_EQ(n.find_node("a"), a);
    EXPECT_EQ(n.find_node(n.node(g).name), g);
    EXPECT_FALSE(n.find_node("missing").has_value());
}

TEST(Network, SweepRemovesDeadLogic) {
    Network n;
    const NodeId a = n.add_input("a");
    const NodeId b = n.add_input("b");
    const NodeId keep = n.add_node("f", {a, b}, Sop::and_n(2));
    n.make_or2(a, b);  // dead
    const NodeId dead2 = n.make_not(keep);
    (void)dead2;  // also dead
    n.add_output("f", keep);
    EXPECT_EQ(n.sweep(), 2u);
    n.check();
    EXPECT_EQ(n.logic_node_count(), 1u);
    EXPECT_EQ(n.inputs().size(), 2u);  // PIs always survive
    EXPECT_EQ(n.outputs()[0].driver, n.find_node("f").value_or(kNullNode));
}

TEST(Network, SweepKeepsEverythingWhenLive) {
    Network n = full_adder();
    const Network ref = full_adder();
    EXPECT_EQ(n.sweep(), 0u);
    EXPECT_EQ(n.logic_node_count(), 5u);
    // Regression: a no-op sweep must leave node contents untouched (names,
    // functions, fanins), not just the node count.
    for (NodeId i = 0; i < n.node_count(); ++i) {
        EXPECT_EQ(n.node(i).name, ref.node(i).name);
        EXPECT_EQ(n.node(i).fanins, ref.node(i).fanins);
        EXPECT_EQ(n.node(i).function.cubes.size(), ref.node(i).function.cubes.size());
    }
    EXPECT_TRUE(equivalent_random(n, ref, 8, 77));
}

TEST(Network, TransitiveFaninIsTopological) {
    const Network n = full_adder();
    const NodeId cout = n.outputs()[1].driver;
    const auto tfi = n.transitive_fanin(cout);
    // Root present, and every node's fanins appear before it.
    EXPECT_NE(std::find(tfi.begin(), tfi.end(), cout), tfi.end());
    for (std::size_t i = 0; i < tfi.size(); ++i) {
        for (NodeId f : n.node(tfi[i]).fanins) {
            const auto pos = std::find(tfi.begin(), tfi.end(), f);
            ASSERT_NE(pos, tfi.end());
            EXPECT_LT(static_cast<std::size_t>(pos - tfi.begin()), i);
        }
    }
}

TEST(Network, MuxTruthTable) {
    Network n;
    const NodeId s = n.add_input("s");
    const NodeId d0 = n.add_input("d0");
    const NodeId d1 = n.add_input("d1");
    const NodeId m = n.make_mux(s, d0, d1);
    n.add_output("y", m);
    std::array<std::uint64_t, 3> ins{};
    for (std::uint64_t p = 0; p < 8; ++p) {
        for (unsigned i = 0; i < 3; ++i) {
            if ((p >> i) & 1) ins[i] |= std::uint64_t{1} << p;
        }
    }
    const auto v = simulate_block(n, ins);
    for (std::uint64_t p = 0; p < 8; ++p) {
        const bool sel = p & 1, w0 = (p >> 1) & 1, w1 = (p >> 2) & 1;
        EXPECT_EQ(((v[m] >> p) & 1) != 0, sel ? w1 : w0) << p;
    }
}

TEST(Network, ConstNodes) {
    Network n;
    const NodeId one = n.make_const(true);
    const NodeId zero = n.make_const(false);
    n.add_output("one", one);
    n.add_output("zero", zero);
    const auto v = simulate_block(n, {});
    EXPECT_EQ(v[one], ~std::uint64_t{0});
    EXPECT_EQ(v[zero], std::uint64_t{0});
}

// ------------------------------------------------------------- equivalence

TEST(Equivalence, IdenticalNetworksAgree) {
    const Network a = full_adder();
    const Network b = full_adder();
    EXPECT_TRUE(equivalent_random(a, b, 8, 123));
}

TEST(Equivalence, DifferentFunctionDetected) {
    Network a = full_adder();
    Network b("fa");
    const NodeId x = b.add_input("a");
    const NodeId y = b.add_input("b");
    const NodeId z = b.add_input("cin");
    b.add_output("sum", b.make_xor2(x, y));  // wrong: ignores cin
    b.add_output("cout", b.make_and2(y, z));
    EXPECT_FALSE(equivalent_random(a, b, 8, 123));
}

TEST(Equivalence, PiOrderIndependent) {
    Network a("m");
    {
        const NodeId p = a.add_input("p");
        const NodeId q = a.add_input("q");
        a.add_output("f", a.make_and2(p, q));
    }
    Network b("m");
    {
        const NodeId q = b.add_input("q");  // reversed declaration order
        const NodeId p = b.add_input("p");
        b.add_output("f", b.make_and2(p, q));
    }
    EXPECT_TRUE(equivalent_random(a, b, 4, 5));
}

TEST(Equivalence, InterfaceMismatchIsLoudNotInequivalent) {
    // A PI/PO name-set mismatch is a caller bug, not a miscompare: the
    // checked API reports InvariantViolation and the throwing wrapper
    // raises instead of returning a silent `false`.
    Network a("m");
    a.add_output("f", a.make_not(a.add_input("x")));
    Network b("m");
    b.add_output("f", b.make_not(b.add_input("y")));  // different PI name
    const StatusOr<bool> eq = equivalent_random_checked(a, b, 1, 9);
    ASSERT_FALSE(eq.is_ok());
    EXPECT_EQ(eq.status().code(), StatusCode::InvariantViolation);
    EXPECT_THROW(equivalent_random(a, b, 1, 9), std::logic_error);
}

TEST(Equivalence, XorDecompositionEquivalent) {
    // xor3 as one node vs chain of xor2s.
    Network a("x");
    {
        std::vector<NodeId> ins;
        for (const char* nm : {"i0", "i1", "i2"}) ins.push_back(a.add_input(nm));
        a.add_output("f", a.make_xor(ins));
    }
    Network b("x");
    {
        const NodeId i0 = b.add_input("i0");
        const NodeId i1 = b.add_input("i1");
        const NodeId i2 = b.add_input("i2");
        b.add_output("f", b.make_xor2(b.make_xor2(i0, i1), i2));
    }
    EXPECT_TRUE(equivalent_random(a, b, 16, 77));
}

}  // namespace
}  // namespace lily
