// Serving-layer tests: wire protocol and spool round-trips, the sandboxed
// worker crash matrix, and end-to-end daemon tests (spawned as a real child
// process) at 1 and 8 worker slots — submit/wait, bit-identity against the
// in-process flow, crash->degraded-retry, sticky crash->terminal error,
// load shedding, and mid-job SIGKILL + restart recovery from the spool.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "check/serve_checker.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/job.hpp"
#include "netlist/blif.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/spool.hpp"
#include "serve/worker.hpp"
#include "util/crash.hpp"
#include "util/crc.hpp"
#include "util/subprocess.hpp"

namespace lily {
namespace {

std::string read_file_or_die(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string tiny_genlib() {
    static const std::string text =
        read_file_or_die(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib");
    return text;
}

JobSpec small_job(const std::string& fault = "") {
    JobSpec spec;
    spec.name = "alu4";
    spec.blif = write_blif(make_alu(4));
    spec.genlib = tiny_genlib();
    spec.options.kind = JobFlowKind::Lily;
    spec.fault_spec = fault;
    return spec;
}

// ---- CRC and wire primitives ----------------------------------------------

TEST(ServeWire, Crc32KnownVector) {
    // The canonical CRC-32 check value.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
}

TEST(ServeWire, WriterReaderRoundTrip) {
    WireWriter w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.f64(-1234.5);
    w.str("hello \x01 world");
    const std::string bytes = w.take();

    WireReader r(bytes);
    std::uint8_t u8v = 0;
    std::uint16_t u16v = 0;
    std::uint32_t u32v = 0;
    std::uint64_t u64v = 0;
    double f64v = 0.0;
    std::string s;
    EXPECT_TRUE(r.u8(u8v));
    EXPECT_TRUE(r.u16(u16v));
    EXPECT_TRUE(r.u32(u32v));
    EXPECT_TRUE(r.u64(u64v));
    EXPECT_TRUE(r.f64(f64v));
    EXPECT_TRUE(r.str(s));
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(u8v, 0xAB);
    EXPECT_EQ(u16v, 0xBEEF);
    EXPECT_EQ(u32v, 0xDEADBEEFu);
    EXPECT_EQ(u64v, 0x0123456789ABCDEFull);
    EXPECT_EQ(f64v, -1234.5);
    EXPECT_EQ(s, "hello \x01 world");
}

TEST(ServeWire, ReaderRejectsTruncation) {
    WireWriter w;
    w.str("payload");
    std::string bytes = w.take();
    bytes.resize(bytes.size() - 2);
    WireReader r(bytes);
    std::string s;
    EXPECT_FALSE(r.str(s));
    EXPECT_FALSE(r.ok());
}

TEST(ServeFrame, RoundTripIncremental) {
    const std::string frame_bytes = encode_frame(MsgKind::Stats, "the payload");
    // Feed the frame one byte at a time: no premature extraction, no bad.
    std::string buffer;
    Frame out;
    bool bad = false;
    for (std::size_t i = 0; i + 1 < frame_bytes.size(); ++i) {
        buffer.push_back(frame_bytes[i]);
        EXPECT_FALSE(try_extract_frame(buffer, out, &bad));
        EXPECT_FALSE(bad);
    }
    buffer.push_back(frame_bytes.back());
    ASSERT_TRUE(try_extract_frame(buffer, out, &bad));
    EXPECT_FALSE(bad);
    EXPECT_EQ(out.kind, MsgKind::Stats);
    EXPECT_EQ(out.payload, "the payload");
    EXPECT_TRUE(buffer.empty());
}

TEST(ServeFrame, CorruptCrcPoisons) {
    std::string bytes = encode_frame(MsgKind::Stats, "the payload");
    bytes[kHeaderBytes + 2] ^= 0x40;  // flip one payload bit
    Frame out;
    bool bad = false;
    EXPECT_FALSE(try_extract_frame(bytes, out, &bad));
    EXPECT_TRUE(bad);
}

TEST(ServeFrame, BadMagicPoisons) {
    std::string bytes = encode_frame(MsgKind::Health, "");
    bytes[0] = 'X';
    Frame out;
    bool bad = false;
    EXPECT_FALSE(try_extract_frame(bytes, out, &bad));
    EXPECT_TRUE(bad);
}

// ---- Message round-trips --------------------------------------------------

TEST(ServeMessages, JobSpecRoundTrip) {
    JobSpec spec = small_job("serve:segv");
    spec.options.objective = MapObjective::Delay;
    spec.options.check = CheckLevel::Light;
    spec.options.budget_ms = 1234.0;
    spec.options.threads = 3;
    spec.tier = JobTier::Degraded;

    const std::string bytes = encode_job_spec(spec);
    WireReader r(bytes);
    JobSpec out;
    ASSERT_TRUE(decode_job_spec(r, out));
    EXPECT_EQ(out.name, spec.name);
    EXPECT_EQ(out.blif, spec.blif);
    EXPECT_EQ(out.genlib, spec.genlib);
    EXPECT_EQ(out.options.objective, MapObjective::Delay);
    EXPECT_EQ(out.options.check, CheckLevel::Light);
    EXPECT_EQ(out.options.budget_ms, 1234.0);
    EXPECT_EQ(out.options.threads, 3u);
    EXPECT_EQ(out.fault_spec, "serve:segv");
    EXPECT_EQ(out.tier, JobTier::Degraded);
}

TEST(ServeMessages, JobOutcomeRoundTrip) {
    JobOutcome outcome;
    outcome.state = JobState::Degraded;
    outcome.status_code = StatusCode::BudgetExhausted;
    outcome.status_message = "ceiling";
    outcome.retries = 2;
    outcome.tier = JobTier::Degraded;
    outcome.crash_info = "CRASH sig=11";
    outcome.elapsed_ms = 55.25;
    outcome.blif_cache = CacheProbe::Hit;
    outcome.genlib_cache = CacheProbe::Miss;
    outcome.worker_job_seq = 17;
    outcome.stage_times.push_back(StageTime{"parse-blif", 0.125});
    outcome.stage_times.push_back(StageTime{"mapping", 12.5});
    outcome.metrics.gate_count = 42;
    outcome.report_json = "{\"x\":1}";
    outcome.mapped_blif = ".model m\n.end\n";

    const std::string bytes = encode_job_outcome(outcome);
    WireReader r(bytes);
    JobOutcome out;
    ASSERT_TRUE(decode_job_outcome(r, out));
    EXPECT_EQ(out.state, JobState::Degraded);
    EXPECT_EQ(out.status_code, StatusCode::BudgetExhausted);
    EXPECT_EQ(out.status_message, "ceiling");
    EXPECT_EQ(out.retries, 2u);
    EXPECT_EQ(out.crash_info, "CRASH sig=11");
    EXPECT_EQ(out.elapsed_ms, 55.25);
    EXPECT_EQ(out.blif_cache, CacheProbe::Hit);
    EXPECT_EQ(out.genlib_cache, CacheProbe::Miss);
    EXPECT_EQ(out.worker_job_seq, 17u);
    ASSERT_EQ(out.stage_times.size(), 2u);
    EXPECT_EQ(out.stage_times[0].name, "parse-blif");
    EXPECT_EQ(out.stage_times[0].elapsed_ms, 0.125);
    EXPECT_EQ(out.stage_times[1].name, "mapping");
    EXPECT_EQ(out.stage_times[1].elapsed_ms, 12.5);
    EXPECT_EQ(out.metrics.gate_count, 42u);
    EXPECT_EQ(out.report_json, "{\"x\":1}");
    EXPECT_EQ(out.mapped_blif, ".model m\n.end\n");
}

TEST(ServeMessages, OutcomeWithBadCacheProbeRejected) {
    JobOutcome outcome;
    std::string bytes = encode_job_outcome(outcome);
    // The probe bytes sit right after state/status/strings; corrupt via a
    // re-encode with an out-of-range enum instead of byte surgery.
    outcome.blif_cache = static_cast<CacheProbe>(7);
    bytes = encode_job_outcome(outcome);
    WireReader r(bytes);
    JobOutcome out;
    EXPECT_FALSE(decode_job_outcome(r, out));
}

TEST(ServeMessages, MalformedSpecRejected) {
    WireWriter w;
    w.u32(99);  // bad protocol version
    const std::string bytes = w.take();
    WireReader r(bytes);
    JobSpec out;
    EXPECT_FALSE(decode_job_spec(r, out));
}

// ---- Spool ----------------------------------------------------------------

class SpoolTest : public ::testing::Test {
protected:
    void SetUp() override {
        char tmpl[] = "/tmp/lily-spool-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }
    void TearDown() override {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        ASSERT_EQ(std::system(cmd.c_str()), 0);
    }
    std::string dir_;
};

TEST_F(SpoolTest, WriteReadScanRemove) {
    Spool spool(dir_);
    ASSERT_TRUE(spool.ensure_dir().is_ok());

    SpoolEntry entry;
    entry.id = 7;
    entry.state = JobState::Ok;
    entry.retries = 1;
    entry.tier = JobTier::Degraded;
    entry.spec = small_job();
    JobOutcome outcome;
    outcome.state = JobState::Ok;
    outcome.status_code = StatusCode::Ok;
    outcome.mapped_blif = ".model x\n.end\n";
    entry.outcome = outcome;
    ASSERT_TRUE(spool.write(entry).is_ok());

    const StatusOr<SpoolEntry> read_back = spool.read(7);
    ASSERT_TRUE(read_back.is_ok());
    EXPECT_EQ(read_back.value().id, 7u);
    EXPECT_EQ(read_back.value().state, JobState::Ok);
    EXPECT_EQ(read_back.value().retries, 1u);
    EXPECT_EQ(read_back.value().tier, JobTier::Degraded);
    EXPECT_EQ(read_back.value().spec.blif, entry.spec.blif);
    ASSERT_TRUE(read_back.value().outcome.has_value());
    EXPECT_EQ(read_back.value().outcome->mapped_blif, ".model x\n.end\n");

    SpoolEntry second;
    second.id = 3;
    second.state = JobState::Queued;
    second.spec = small_job();
    ASSERT_TRUE(spool.write(second).is_ok());

    const StatusOr<std::vector<SpoolEntry>> scanned = spool.scan();
    ASSERT_TRUE(scanned.is_ok());
    ASSERT_EQ(scanned.value().size(), 2u);
    EXPECT_EQ(scanned.value()[0].id, 3u);  // sorted by id
    EXPECT_EQ(scanned.value()[1].id, 7u);

    ASSERT_TRUE(spool.remove(3).is_ok());
    ASSERT_TRUE(spool.remove(3).is_ok());  // idempotent
    const StatusOr<std::vector<SpoolEntry>> after = spool.scan();
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(after.value().size(), 1u);
}

TEST_F(SpoolTest, CorruptRecordSkippedByScanFlaggedByAudit) {
    Spool spool(dir_);
    ASSERT_TRUE(spool.ensure_dir().is_ok());
    SpoolEntry entry;
    entry.id = 1;
    entry.spec = small_job();
    ASSERT_TRUE(spool.write(entry).is_ok());

    // Torn/garbage record alongside it.
    {
        std::ofstream bad(dir_ + "/job-2.spool", std::ios::binary);
        bad << "this is not a spool record";
    }
    const StatusOr<std::vector<SpoolEntry>> scanned = spool.scan();
    ASSERT_TRUE(scanned.is_ok());
    EXPECT_EQ(scanned.value().size(), 1u);  // server still comes up

    const CheckReport report = ServeChecker{}.check_spool(dir_);
    EXPECT_TRUE(report.has_errors());  // ...but the audit flags the damage
}

TEST_F(SpoolTest, AuditFlagsTmpLeftoverAndIdMismatch) {
    Spool spool(dir_);
    ASSERT_TRUE(spool.ensure_dir().is_ok());
    SpoolEntry entry;
    entry.id = 5;
    entry.spec = small_job();
    ASSERT_TRUE(spool.write(entry).is_ok());

    {
        std::ofstream tmp(dir_ + "/job-9.spool.tmp", std::ios::binary);
        tmp << "interrupted";
    }
    CheckReport report = ServeChecker{}.check_spool(dir_);
    EXPECT_FALSE(report.has_errors());
    EXPECT_GE(report.warning_count(), 1u);  // .tmp leftover

    // Rename the valid record so filename and embedded id disagree.
    ASSERT_EQ(std::rename((dir_ + "/job-5.spool").c_str(),
                          (dir_ + "/job-6.spool").c_str()),
              0);
    report = ServeChecker{}.check_spool(dir_);
    EXPECT_TRUE(report.has_errors());
}

TEST_F(SpoolTest, AuditFlagsTerminalWithoutOutcome) {
    Spool spool(dir_);
    ASSERT_TRUE(spool.ensure_dir().is_ok());
    SpoolEntry entry;
    entry.id = 4;
    entry.state = JobState::Error;  // terminal, but no outcome attached
    entry.spec = small_job();
    ASSERT_TRUE(spool.write(entry).is_ok());
    EXPECT_TRUE(ServeChecker{}.check_spool(dir_).has_errors());
}

TEST(SpoolCodec, CrcFlipRejected) {
    SpoolEntry entry;
    entry.id = 11;
    entry.spec = small_job();
    std::string bytes = encode_spool_entry(entry);
    bytes[bytes.size() / 2] ^= 0x10;
    EXPECT_FALSE(decode_spool_entry(bytes).is_ok());
}

// ---- The flow-job shim ----------------------------------------------------

TEST(FlowJob, RunsCleanJob) {
    const JobOutcome outcome = run_flow_job(small_job());
    EXPECT_EQ(outcome.state, JobState::Ok);
    EXPECT_EQ(outcome.status_code, StatusCode::Ok);
    EXPECT_GT(outcome.metrics.gate_count, 0u);
    EXPECT_NE(outcome.mapped_blif.find(".model"), std::string::npos);
    EXPECT_NE(outcome.report_json.find("\"stages\""), std::string::npos);
}

TEST(FlowJob, ParseErrorIsTerminalError) {
    JobSpec spec = small_job();
    spec.blif = ".model broken\n.inputs a\n.outputs z\n.names a a z\n1 1\n.end\n";
    const JobOutcome outcome = run_flow_job(spec);
    EXPECT_EQ(outcome.state, JobState::Error);
    EXPECT_NE(outcome.status_code, StatusCode::Ok);
}

TEST(FlowJob, DegradedTierReportsDegraded) {
    JobSpec spec = small_job();
    spec.tier = JobTier::Degraded;
    const JobOutcome outcome = run_flow_job(spec);
    EXPECT_EQ(outcome.state, JobState::Degraded);
    EXPECT_EQ(outcome.status_code, StatusCode::Ok);
    EXPECT_FALSE(outcome.mapped_blif.empty());
}

// ---- The parsed-artifact cache --------------------------------------------

/// Tests share the process-global cache; each starts from a cleared state
/// and restores the default caps so ordering cannot leak between them.
class ArtifactCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        ArtifactCache::instance().clear();
        ArtifactCache::instance().set_capacity(64, 64u << 20);
    }
    void TearDown() override {
        ArtifactCache::instance().clear();
        ArtifactCache::instance().set_capacity(64, 64u << 20);
    }
};

TEST_F(ArtifactCacheTest, MissThenHitSharesOneParse) {
    ArtifactCache& cache = ArtifactCache::instance();
    const std::string blif = write_blif(make_alu(4));

    CacheProbe probe = CacheProbe::Skipped;
    const auto first = cache.network_for(blif, &probe);
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(probe, CacheProbe::Miss);

    const auto second = cache.network_for(blif, &probe);
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(probe, CacheProbe::Hit);
    // Same parse, not an equal re-parse: the shared_ptr is identical.
    EXPECT_EQ(first.value().get(), second.value().get());

    const ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.text_bytes, blif.size());
}

TEST_F(ArtifactCacheTest, LibraryAndNetworkKeyedIndependently) {
    ArtifactCache& cache = ArtifactCache::instance();
    CacheProbe probe = CacheProbe::Skipped;
    ASSERT_TRUE(cache.library_for(tiny_genlib(), &probe).is_ok());
    EXPECT_EQ(probe, CacheProbe::Miss);
    ASSERT_TRUE(cache.library_for(tiny_genlib(), &probe).is_ok());
    EXPECT_EQ(probe, CacheProbe::Hit);
    ASSERT_TRUE(cache.network_for(write_blif(make_alu(2)), &probe).is_ok());
    EXPECT_EQ(probe, CacheProbe::Miss);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST_F(ArtifactCacheTest, ParseFailureIsNeverCached) {
    ArtifactCache& cache = ArtifactCache::instance();
    const std::string broken = ".model broken\n.inputs a\n.outputs z\n.names a a z\n1 1\n.end\n";
    CacheProbe probe = CacheProbe::Skipped;
    EXPECT_FALSE(cache.network_for(broken, &probe).is_ok());
    EXPECT_FALSE(cache.network_for(broken, &probe).is_ok());
    // Both probes were misses: the failure must not be served from cache.
    EXPECT_EQ(probe, CacheProbe::Miss);
    const ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST_F(ArtifactCacheTest, EvictionHonorsEntryCapLru) {
    ArtifactCache& cache = ArtifactCache::instance();
    cache.set_capacity(2, 64u << 20);
    const std::string a = write_blif(make_alu(2));
    const std::string b = write_blif(make_alu(3));
    const std::string c = write_blif(make_alu(4));
    ASSERT_TRUE(cache.network_for(a).is_ok());
    ASSERT_TRUE(cache.network_for(b).is_ok());
    ASSERT_TRUE(cache.network_for(a).is_ok());  // refresh a: b is now LRU
    ASSERT_TRUE(cache.network_for(c).is_ok());  // evicts b
    EXPECT_EQ(cache.stats().entries, 2u);

    CacheProbe probe = CacheProbe::Skipped;
    ASSERT_TRUE(cache.network_for(a, &probe).is_ok());
    EXPECT_EQ(probe, CacheProbe::Hit);
    ASSERT_TRUE(cache.network_for(b, &probe).is_ok());
    EXPECT_EQ(probe, CacheProbe::Miss);  // b was the eviction victim
}

TEST_F(ArtifactCacheTest, DisabledCacheStillParses) {
    ArtifactCache& cache = ArtifactCache::instance();
    cache.set_enabled(false);
    CacheProbe probe = CacheProbe::Hit;
    const auto parsed = cache.network_for(write_blif(make_alu(2)), &probe);
    cache.set_enabled(true);
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(probe, CacheProbe::Skipped);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(ArtifactCacheTest, RepeatedFlowJobsParseOnce) {
    // The satellite contract: repeated run_flow_job calls in one process
    // hit the cache for both artifacts from the second call on.
    const JobSpec spec = small_job();
    const JobOutcome first = run_flow_job(spec);
    EXPECT_EQ(first.blif_cache, CacheProbe::Miss);
    EXPECT_EQ(first.genlib_cache, CacheProbe::Miss);
    const JobOutcome second = run_flow_job(spec);
    EXPECT_EQ(second.blif_cache, CacheProbe::Hit);
    EXPECT_EQ(second.genlib_cache, CacheProbe::Hit);
    // Bit-identity across cold and warm parses.
    EXPECT_EQ(first.mapped_blif, second.mapped_blif);
    EXPECT_EQ(first.report_json.substr(first.report_json.find("\"metrics\":")),
              second.report_json.substr(second.report_json.find("\"metrics\":")));
}

// ---- Sandboxed worker crash matrix (direct fork, no daemon) ---------------

WorkerLimits fast_limits() {
    WorkerLimits limits;
    limits.wall_ms = 20000.0;
    limits.rss_bytes = 1u << 30;
    limits.heartbeat_timeout_ms = 3000.0;
    return limits;
}

TEST(WorkerSandbox, CleanJobCompletes) {
    const WorkerResult result = run_job_sandboxed(small_job(), fast_limits());
    ASSERT_EQ(result.end, WorkerEnd::Completed);
    EXPECT_EQ(result.outcome.state, JobState::Ok);
    EXPECT_FALSE(result.outcome.mapped_blif.empty());
    EXPECT_GT(result.heartbeats, 0u);
}

TEST(WorkerSandbox, SegvIsClassifiedCrash) {
    const WorkerResult result = run_job_sandboxed(small_job("serve:segv"), fast_limits());
    EXPECT_EQ(result.end, WorkerEnd::Crashed);
    // The async-signal-safe crash reporter's line made it across the pipe.
    EXPECT_NE(result.crash_info.find("sig=11"), std::string::npos) << result.crash_info;
    EXPECT_NE(result.crash_info.find("serve:segv"), std::string::npos);
}

TEST(WorkerSandbox, AbortIsClassifiedCrash) {
    const WorkerResult result = run_job_sandboxed(small_job("serve:abort"), fast_limits());
    EXPECT_EQ(result.end, WorkerEnd::Crashed);
    EXPECT_NE(result.crash_info.find("sig=6"), std::string::npos) << result.crash_info;
}

TEST(WorkerSandbox, OomHitsRssCeiling) {
    WorkerLimits limits = fast_limits();
    limits.rss_bytes = 64u << 20;
    const WorkerResult result = run_job_sandboxed(small_job("serve:oom"), limits);
    EXPECT_EQ(result.end, WorkerEnd::RssKilled);
    EXPECT_GT(result.peak_rss_bytes, limits.rss_bytes);
}

TEST(WorkerSandbox, HangHitsWallCeiling) {
    WorkerLimits limits = fast_limits();
    limits.wall_ms = 600.0;
    const WorkerResult result = run_job_sandboxed(small_job("serve:hang"), limits);
    EXPECT_EQ(result.end, WorkerEnd::WallKilled);
    EXPECT_GT(result.heartbeats, 0u);  // it was beating, just never finishing
}

TEST(WorkerSandbox, WedgeHitsHeartbeatCeiling) {
    WorkerLimits limits = fast_limits();
    limits.heartbeat_timeout_ms = 400.0;
    const WorkerResult result = run_job_sandboxed(small_job("serve:wedge"), limits);
    EXPECT_EQ(result.end, WorkerEnd::HeartbeatKilled);
}

TEST(WorkerSandbox, PlainFaultSkippedAtDegradedTier) {
    JobSpec spec = small_job("serve:segv");
    spec.tier = JobTier::Degraded;  // plain faults fire only at Full
    const WorkerResult result = run_job_sandboxed(spec, fast_limits());
    ASSERT_EQ(result.end, WorkerEnd::Completed);
    EXPECT_EQ(result.outcome.state, JobState::Degraded);
}

TEST(WorkerSandbox, StickyFaultFiresAtEveryTier) {
    JobSpec spec = small_job("serve:segv-sticky");
    spec.tier = JobTier::Degraded;
    const WorkerResult result = run_job_sandboxed(spec, fast_limits());
    EXPECT_EQ(result.end, WorkerEnd::Crashed);
}

/// Poll until the worker surfaces a completed job; dies loudly on timeout.
WorkerResult await_job(WorkerProcess& worker) {
    for (int i = 0; i < 4000; ++i) {
        worker.poll();
        if (worker.has_job_result()) return worker.take_job_result();
        if (worker.done()) {
            ADD_FAILURE() << "worker died: " << worker.result().crash_info;
            return worker.result();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "timed out waiting for job result";
    return WorkerResult{};
}

TEST(WorkerSandbox, WarmWorkerServesManyJobsFromItsCache) {
    WorkerProcess worker;
    ASSERT_TRUE(worker.start(fast_limits()).is_ok());
    const JobSpec spec = small_job();

    ASSERT_TRUE(worker.dispatch(spec).is_ok());
    const WorkerResult first = await_job(worker);
    ASSERT_EQ(first.end, WorkerEnd::Completed);
    EXPECT_EQ(first.outcome.worker_job_seq, 1u);
    // A fresh fork has an empty cache: both artifacts parsed.
    EXPECT_EQ(first.outcome.blif_cache, CacheProbe::Miss);
    EXPECT_EQ(first.outcome.genlib_cache, CacheProbe::Miss);
    EXPECT_GT(first.heartbeats, 0u);

    // Same worker, same bytes: the process-local cache serves both parses.
    ASSERT_TRUE(worker.idle());
    ASSERT_TRUE(worker.dispatch(spec).is_ok());
    const WorkerResult second = await_job(worker);
    ASSERT_EQ(second.end, WorkerEnd::Completed);
    EXPECT_EQ(second.outcome.worker_job_seq, 2u);
    EXPECT_EQ(second.outcome.blif_cache, CacheProbe::Hit);
    EXPECT_EQ(second.outcome.genlib_cache, CacheProbe::Hit);
    EXPECT_EQ(worker.jobs_completed(), 2u);
    // Warm or cold, the served bytes are identical.
    EXPECT_EQ(first.outcome.mapped_blif, second.outcome.mapped_blif);

    // Retirement: closing the dispatch pipe drains the worker to a clean
    // exit, classified Retired (not Crashed), and it stops being idle.
    worker.retire();
    EXPECT_FALSE(worker.idle());
    for (int i = 0; i < 4000 && !worker.done(); ++i) {
        worker.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(worker.done());
    EXPECT_EQ(worker.result().end, WorkerEnd::Retired);
}

TEST(WorkerSandbox, CrashedWarmWorkerReportsMidStreamJob) {
    // A crash on job N of a warm worker must be classified against that
    // job, not swallowed by earlier successes.
    WorkerProcess worker;
    ASSERT_TRUE(worker.start(fast_limits()).is_ok());
    ASSERT_TRUE(worker.dispatch(small_job()).is_ok());
    const WorkerResult ok = await_job(worker);
    ASSERT_EQ(ok.end, WorkerEnd::Completed);

    ASSERT_TRUE(worker.dispatch(small_job("serve:segv")).is_ok());
    for (int i = 0; i < 4000 && !worker.done(); ++i) {
        worker.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(worker.done());
    EXPECT_EQ(worker.result().end, WorkerEnd::Crashed);
    EXPECT_NE(worker.result().crash_info.find("sig=11"), std::string::npos)
        << worker.result().crash_info;
}

// ---- End-to-end daemon tests ----------------------------------------------

/// Spawns the real lily_serve binary against a fresh spool + socket. The
/// test talks to it through ServeClient exactly like production clients.
class ServeDaemonBase : public ::testing::Test {
protected:
    void SetUp() override {
        char tmpl[] = "/tmp/lily-serve-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        socket_ = dir_ + "/serve.sock";
        spool_ = dir_ + "/spool";
    }

    void TearDown() override {
        if (server_pid_ > 0) stop_process(server_pid_, 500.0);
        const std::string cmd = "rm -rf '" + dir_ + "'";
        ASSERT_EQ(std::system(cmd.c_str()), 0);
    }

    void start_server_n(int workers, const std::vector<std::string>& extra = {}) {
        std::vector<std::string> argv = {LILY_SERVE_BIN,
                                         "--socket=" + socket_,
                                         "--spool=" + spool_,
                                         "--workers=" + std::to_string(workers),
                                         "--backoff-ms=10"};
        argv.insert(argv.end(), extra.begin(), extra.end());
        StatusOr<pid_t> spawned = spawn_process(argv, dir_ + "/server.log");
        ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
        server_pid_ = spawned.value();
        wait_until_up();
    }

    void wait_until_up() {
        ServeClient probe(socket_);
        for (int i = 0; i < 200; ++i) {
            if (probe.health().is_ok()) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        FAIL() << "server did not come up; log:\n" << read_file_or_die(dir_ + "/server.log");
    }

    void stop_server() {
        if (server_pid_ <= 0) return;
        const ExitStatus ended = stop_process(server_pid_, 2000.0);
        server_pid_ = -1;
        EXPECT_EQ(ended.kind, ExitKind::Exited) << ended.to_string();
    }

    /// Open fds of the server process (via /proc): the leak detector.
    int server_fd_count() const {
        const std::string path = "/proc/" + std::to_string(server_pid_) + "/fd";
        DIR* dir = ::opendir(path.c_str());
        if (dir == nullptr) return -1;
        int count = 0;
        while (dirent* entry = ::readdir(dir)) {
            if (std::strcmp(entry->d_name, ".") != 0 && std::strcmp(entry->d_name, "..") != 0) {
                ++count;
            }
        }
        ::closedir(dir);
        return count;
    }

    std::string dir_, socket_, spool_;
    pid_t server_pid_ = -1;
};

class ServeDaemonTest : public ServeDaemonBase, public ::testing::WithParamInterface<int> {
protected:
    void start_server(const std::vector<std::string>& extra = {}) {
        start_server_n(GetParam(), extra);
    }
};

TEST_P(ServeDaemonTest, MapMatchesInProcessBitForBit) {
    start_server();
    ServeClient client(socket_);
    const JobSpec spec = small_job();
    const StatusOr<JobOutcome> served = client.map(spec);
    ASSERT_TRUE(served.is_ok()) << served.status().to_string();
    EXPECT_EQ(served.value().state, JobState::Ok);

    const JobOutcome direct = run_flow_job(spec);
    EXPECT_EQ(served.value().mapped_blif, direct.mapped_blif);
    EXPECT_EQ(served.value().metrics.gate_count, direct.metrics.gate_count);
    EXPECT_EQ(served.value().metrics.cell_area, direct.metrics.cell_area);
    EXPECT_EQ(served.value().metrics.chip_area, direct.metrics.chip_area);
    EXPECT_EQ(served.value().metrics.wirelength, direct.metrics.wirelength);
    EXPECT_EQ(served.value().metrics.critical_delay, direct.metrics.critical_delay);
    // The full report embeds per-stage wall-clock timings, which legitimately
    // differ run to run; the metrics block must match exactly.
    const auto metrics_block = [](const std::string& report) {
        const std::size_t at = report.find("\"metrics\":");
        return at == std::string::npos ? std::string() : report.substr(at);
    };
    EXPECT_EQ(metrics_block(served.value().report_json),
              metrics_block(direct.report_json));
    EXPECT_FALSE(metrics_block(direct.report_json).empty());
}

TEST_P(ServeDaemonTest, CrashRetriesDegraded) {
    start_server();
    ServeClient client(socket_);
    const StatusOr<JobOutcome> outcome = client.map(small_job("serve:segv"));
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
    EXPECT_EQ(outcome.value().state, JobState::Degraded);
    EXPECT_EQ(outcome.value().retries, 1u);
    EXPECT_EQ(outcome.value().tier, JobTier::Degraded);
    EXPECT_FALSE(outcome.value().mapped_blif.empty());
}

TEST_P(ServeDaemonTest, StickyCrashIsTerminalError) {
    start_server();
    ServeClient client(socket_);
    const StatusOr<JobOutcome> outcome = client.map(small_job("serve:abort-sticky"));
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
    EXPECT_EQ(outcome.value().state, JobState::Error);
    EXPECT_EQ(outcome.value().retries, 1u);
    EXPECT_FALSE(outcome.value().crash_info.empty());

    // The server survived both crashes: it still answers health.
    const StatusOr<HealthReply> health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_TRUE(health.value().ok);
}

TEST_P(ServeDaemonTest, RssCeilingKillsOomJob) {
    start_server({"--rss-mb=64"});
    ServeClient client(socket_);
    const StatusOr<JobOutcome> outcome = client.map(small_job("serve:oom-sticky"));
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
    EXPECT_EQ(outcome.value().state, JobState::Error);
    EXPECT_EQ(outcome.value().status_code, StatusCode::BudgetExhausted);
}

TEST_P(ServeDaemonTest, WallCeilingKillsHangJob) {
    start_server({"--wall-ms=700"});
    ServeClient client(socket_);
    const StatusOr<JobOutcome> outcome = client.map(small_job("serve:hang-sticky"));
    ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
    EXPECT_EQ(outcome.value().state, JobState::Error);
    EXPECT_EQ(outcome.value().status_code, StatusCode::BudgetExhausted);
}

TEST_P(ServeDaemonTest, QueueOverfillShedsNotHangs) {
    start_server({"--queue-cap=2", "--wall-ms=15000"});
    ServeClient client(socket_);

    // Occupy every worker with hang jobs, then fill the queue, then overfill.
    const JobSpec hog = small_job("serve:hang-sticky");
    const int workers = GetParam();
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < workers; ++i) {
        const StatusOr<SubmitReply> reply = client.submit(hog);
        ASSERT_TRUE(reply.is_ok());
        ASSERT_TRUE(reply.value().accepted);
        ids.push_back(reply.value().job_id);
    }
    // Wait until all workers are actually busy so the queue stays full.
    for (int i = 0; i < 200; ++i) {
        const StatusOr<HealthReply> health = client.health();
        ASSERT_TRUE(health.is_ok());
        if (health.value().workers_busy == static_cast<std::uint32_t>(workers)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    for (int i = 0; i < 2; ++i) {
        const StatusOr<SubmitReply> reply = client.submit(hog);
        ASSERT_TRUE(reply.is_ok());
        ASSERT_TRUE(reply.value().accepted) << "queue slot " << i;
    }
    const StatusOr<SubmitReply> shed = client.submit(hog);
    ASSERT_TRUE(shed.is_ok());
    EXPECT_FALSE(shed.value().accepted);
    EXPECT_GT(shed.value().retry_after_ms, 0u);

    const StatusOr<std::string> stats = client.stats();
    ASSERT_TRUE(stats.is_ok());
    EXPECT_NE(stats.value().find("\"shed\":1"), std::string::npos) << stats.value();
}

TEST_P(ServeDaemonTest, SigtermMidJobRecoversFromSpool) {
    start_server({"--wall-ms=2000"});
    std::vector<std::uint64_t> ids;
    {
        ServeClient client(socket_);
        // Plain serve:hang: wall-killed at Full tier, completes at the
        // degraded retry — so recovery has real work to finish.
        const JobSpec spec = small_job("serve:hang");
        for (int i = 0; i < 3; ++i) {
            const StatusOr<SubmitReply> reply = client.submit(spec);
            ASSERT_TRUE(reply.is_ok());
            ASSERT_TRUE(reply.value().accepted);
            ids.push_back(reply.value().job_id);
        }
        // Let at least one job reach a worker, then kill the server dead
        // (SIGKILL: no graceful path, the spool is all that survives).
        for (int i = 0; i < 200; ++i) {
            const StatusOr<HealthReply> health = client.health();
            ASSERT_TRUE(health.is_ok());
            if (health.value().workers_busy > 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ::kill(server_pid_, SIGKILL);
    wait_exit(server_pid_);
    server_pid_ = -1;

    start_server({"--wall-ms=2000"});
    ServeClient client(socket_);
    for (const std::uint64_t id : ids) {
        ResultReply last;
        for (int i = 0; i < 60; ++i) {
            const StatusOr<ResultReply> reply = client.wait(id, 1000);
            ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
            last = reply.value();
            if (last.terminal) break;
        }
        ASSERT_TRUE(last.found) << "job " << id << " lost across restart";
        ASSERT_TRUE(last.terminal) << "job " << id << " never finished";
        // Every accepted job ends in a verdict; none may be Error (the
        // degraded rung absorbs the plain hang fault).
        EXPECT_NE(last.outcome.state, JobState::Error)
            << "job " << id << ": " << last.outcome.status_message;
    }
    // recovered_from_spool is the stats document's final key: ":0}" would
    // mean the restarted server recovered nothing.
    const StatusOr<std::string> stats = client.stats();
    ASSERT_TRUE(stats.is_ok());
    EXPECT_EQ(stats.value().find("\"recovered_from_spool\":0}"), std::string::npos)
        << stats.value();

    // The journal survived the whole ordeal in a consistent state.
    EXPECT_FALSE(ServeChecker{}.check_spool(spool_).has_errors());
}

TEST_P(ServeDaemonTest, HealthReportsShape) {
    start_server();
    ServeClient client(socket_);
    const StatusOr<HealthReply> health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_TRUE(health.value().ok);
    EXPECT_EQ(health.value().workers_total, static_cast<std::uint32_t>(GetParam()));
    EXPECT_EQ(health.value().workers_busy, 0u);
    EXPECT_EQ(health.value().queue_depth, 0u);
    EXPECT_GT(health.value().queue_capacity, 0u);
}

TEST_P(ServeDaemonTest, DrainShutdownFinishesQueuedJobs) {
    start_server();
    ServeClient client(socket_);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        const StatusOr<SubmitReply> reply = client.submit(small_job());
        ASSERT_TRUE(reply.is_ok());
        ASSERT_TRUE(reply.value().accepted);
        ids.push_back(reply.value().job_id);
    }
    ASSERT_TRUE(client.shutdown(/*drain=*/true).is_ok());
    const ExitStatus ended = wait_exit(server_pid_);
    server_pid_ = -1;
    EXPECT_EQ(ended.kind, ExitKind::Exited);
    EXPECT_EQ(ended.code, 0);

    // All three jobs reached a terminal state in the spool before exit.
    Spool spool(spool_);
    for (const std::uint64_t id : ids) {
        const StatusOr<SpoolEntry> entry = spool.read(id);
        ASSERT_TRUE(entry.is_ok()) << "job " << id << " missing from spool";
        EXPECT_TRUE(job_state_terminal(entry.value().state));
    }
    EXPECT_FALSE(ServeChecker{}.check_spool(spool_).has_errors());
}

// ---- Warm-pool daemon behavior (exact counters need exactly one worker) ---

TEST_F(ServeDaemonBase, CacheCountersExactAndRecycleAfterN) {
    start_server_n(1, {"--recycle-after=2", "--verbose"});
    ServeClient client(socket_);
    const JobSpec spec = small_job();

    // Five identical sequential jobs on one slot recycled every 2 jobs:
    // workers serve (miss,miss)(hit,hit) | (miss,miss)(hit,hit) | (miss,miss)
    // and every worker job number stays <= the recycle threshold.
    const CacheProbe expect_blif[5] = {CacheProbe::Miss, CacheProbe::Hit, CacheProbe::Miss,
                                       CacheProbe::Hit, CacheProbe::Miss};
    std::string first_mapped;
    for (int i = 0; i < 5; ++i) {
        const StatusOr<JobOutcome> outcome = client.map(spec);
        ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
        ASSERT_EQ(outcome.value().state, JobState::Ok) << "job " << i;
        EXPECT_EQ(outcome.value().blif_cache, expect_blif[i]) << "job " << i;
        EXPECT_EQ(outcome.value().genlib_cache, expect_blif[i]) << "job " << i;
        EXPECT_EQ(outcome.value().worker_job_seq, static_cast<std::uint32_t>(i % 2 + 1));
        if (i == 0) {
            first_mapped = outcome.value().mapped_blif;
        } else {
            EXPECT_EQ(outcome.value().mapped_blif, first_mapped) << "job " << i;
        }
    }

    const StatusOr<HealthReply> health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_EQ(health.value().cache_hits, 4u);
    EXPECT_EQ(health.value().cache_misses, 6u);
    EXPECT_EQ(health.value().workers_recycled, 2u);
    // Planned retirements are not crashes: nothing was "respawned".
    EXPECT_EQ(health.value().workers_respawned, 0u)
        << read_file_or_die(dir_ + "/server.log");
}

TEST_F(ServeDaemonBase, ColdPoolParsesEveryJob) {
    start_server_n(1, {"--pool=cold"});
    ServeClient client(socket_);
    const JobSpec spec = small_job();
    std::string first_mapped;
    for (int i = 0; i < 2; ++i) {
        const StatusOr<JobOutcome> outcome = client.map(spec);
        ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
        ASSERT_EQ(outcome.value().state, JobState::Ok);
        // Every job lands on a fresh fork: always a double miss, job seq 1.
        EXPECT_EQ(outcome.value().blif_cache, CacheProbe::Miss);
        EXPECT_EQ(outcome.value().genlib_cache, CacheProbe::Miss);
        EXPECT_EQ(outcome.value().worker_job_seq, 1u);
        if (i == 0) {
            first_mapped = outcome.value().mapped_blif;
        } else {
            EXPECT_EQ(outcome.value().mapped_blif, first_mapped);
        }
    }
    const StatusOr<HealthReply> health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_EQ(health.value().cache_hits, 0u);
    EXPECT_EQ(health.value().cache_misses, 4u);
    EXPECT_EQ(health.value().workers_recycled, 2u);
}

TEST_F(ServeDaemonBase, CrashRespawnCyclesLeakNoFdsOrSpoolRecords) {
    start_server_n(1);
    ServeClient client(socket_);

    // Settle: one clean job warms the pool, then measure the fd baseline
    // (one client connection held open throughout).
    ASSERT_TRUE(client.map(small_job()).is_ok());
    const int baseline = server_fd_count();
    ASSERT_GT(baseline, 0);

    // Each sticky crash burns the full tier and the degraded retry: two
    // worker deaths + respawns per job, exercising pipe setup/teardown.
    for (int i = 0; i < 3; ++i) {
        const StatusOr<JobOutcome> outcome = client.map(small_job("serve:segv-sticky"));
        ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
        EXPECT_EQ(outcome.value().state, JobState::Error);
    }
    // A clean job still works on the respawned worker.
    const StatusOr<JobOutcome> after = client.map(small_job());
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(after.value().state, JobState::Ok);

    // Give ensure_workers a tick to finish any in-flight respawn, then the
    // fd table must be back at the baseline: pipes don't leak.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(server_fd_count(), baseline);

    const StatusOr<HealthReply> health = client.health();
    ASSERT_TRUE(health.is_ok());
    EXPECT_GE(health.value().workers_respawned, 6u);

    // Every crash-retry transition was journaled without damage.
    EXPECT_FALSE(ServeChecker{}.check_spool(spool_).has_errors());
}

INSTANTIATE_TEST_SUITE_P(WorkerSlots, ServeDaemonTest, ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return "workers" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lily
