#include <gtest/gtest.h>

#include <array>

#include "place/netlist_adapters.hpp"
#include "route/chip_area.hpp"
#include "route/global_router.hpp"
#include "route/wire_models.hpp"
#include "subject/decompose.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

// ------------------------------------------------------------- wire models

TEST(WireModels, ChungHwangFactorProperties) {
    EXPECT_DOUBLE_EQ(chung_hwang_factor(2), 1.0);
    EXPECT_DOUBLE_EQ(chung_hwang_factor(3), 1.0);
    double prev = 1.0;
    for (std::size_t n = 4; n <= 200; ++n) {
        const double f = chung_hwang_factor(n);
        EXPECT_GE(f, prev);  // monotone
        EXPECT_GE(f, 1.0);
        EXPECT_LE(f, 2.5);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(chung_hwang_factor(10'000), 2.5);  // saturates
}

TEST(WireModels, TwoPinExact) {
    const std::array<Point, 2> pins{Point{0, 0}, Point{3, 4}};
    EXPECT_DOUBLE_EQ(steiner_estimate(pins), 7.0);
    EXPECT_DOUBLE_EQ(rectilinear_mst_length(pins), 7.0);
}

TEST(WireModels, MstOnSquare) {
    // Unit square corners: RMST = 3 unit edges.
    const std::array<Point, 4> pins{Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}};
    EXPECT_DOUBLE_EQ(rectilinear_mst_length(pins), 3.0);
    // HPWL = 2; Steiner estimate = 2 * factor(4) which must not exceed RMST
    // by construction of the factor... (estimate vs bound: just check order
    // of magnitude agreement here.)
    EXPECT_GT(steiner_estimate(pins), 2.0);
    EXPECT_LE(steiner_estimate(pins), 3.0);
}

TEST(WireModels, MstDominatesHpwlAndIsSubadditive) {
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<Point> pins(2 + rng.next_below(10));
        for (Point& p : pins) p = {rng.next_double(0, 100), rng.next_double(0, 100)};
        const double hp = half_perimeter_wirelength(pins);
        const double mst = rectilinear_mst_length(pins);
        EXPECT_GE(mst + 1e-9, hp * 0.5);  // weak sanity: MST >= HP/2 always
        // MST connects everything: at least the bounding box extent in one
        // dimension must be traversed.
        const Rect bb = bounding_box(pins);
        EXPECT_GE(mst + 1e-9, std::max(bb.width(), bb.height()));
    }
}

TEST(WireModels, DegenerateNets) {
    EXPECT_DOUBLE_EQ(rectilinear_mst_length({}), 0.0);
    const std::array<Point, 1> one{Point{5, 5}};
    EXPECT_DOUBLE_EQ(rectilinear_mst_length(one), 0.0);
    EXPECT_DOUBLE_EQ(steiner_estimate(one), 0.0);
    // Coincident pins cost nothing.
    const std::array<Point, 3> same{Point{1, 1}, Point{1, 1}, Point{1, 1}};
    EXPECT_DOUBLE_EQ(rectilinear_mst_length(same), 0.0);
}

TEST(WireModels, DispatchMatchesImplementations) {
    Rng rng(6);
    std::vector<Point> pins(6);
    for (Point& p : pins) p = {rng.next_double(0, 10), rng.next_double(0, 10)};
    EXPECT_DOUBLE_EQ(net_wirelength(pins, WireModel::SteinerHpwl), steiner_estimate(pins));
    EXPECT_DOUBLE_EQ(net_wirelength(pins, WireModel::SpanningTree),
                     rectilinear_mst_length(pins));
}

// ------------------------------------------------------------------ router

PlacementNetlist two_pin_netlist(Point a, Point b) {
    PlacementNetlist nl;
    nl.n_cells = 2;
    nl.cell_area = {1.0, 1.0};
    PlacementNetlist::Net net;
    net.cells = {0, 1};
    nl.nets.push_back(net);
    nl.pad_positions = {};
    (void)a;
    (void)b;
    return nl;
}

TEST(Router, SingleNetLengthMatchesManhattan) {
    const PlacementNetlist nl = two_pin_netlist({0, 0}, {0, 0});
    const Rect region({0, 0}, {32, 32});
    const std::array<Point, 2> pos{Point{4.5, 4.5}, Point{20.5, 12.5}};
    RouterOptions opts;
    opts.grid = 32;
    const RouteResult r = route_global(nl, pos, region, opts);
    // Grid cells are 1x1: routed length equals grid Manhattan distance.
    EXPECT_NEAR(r.total_wirelength, 16.0 + 8.0, 1.0);
    EXPECT_EQ(r.total_overflow, 0.0);
}

TEST(Router, CongestionAwareChoosesDetour) {
    // Many identical connections between two corners: usage must spread
    // over both L-shapes rather than piling on one.
    PlacementNetlist nl;
    nl.n_cells = 20;
    nl.cell_area.assign(20, 1.0);
    for (std::size_t i = 0; i + 1 < 20; i += 2) {
        PlacementNetlist::Net net;
        net.cells = {i, i + 1};
        nl.nets.push_back(net);
    }
    std::vector<Point> pos(20);
    for (std::size_t i = 0; i < 20; i += 2) {
        pos[i] = {1.5, 1.5};
        pos[i + 1] = {30.5, 30.5};
    }
    const Rect region({0, 0}, {32, 32});
    RouterOptions opts;
    opts.grid = 32;
    opts.capacity_per_edge = 2.0;
    const RouteResult r = route_global(nl, pos, region, opts);
    // Both the horizontal-first and vertical-first L paths must carry load.
    double top_h = 0.0, bottom_h = 0.0;
    for (std::size_t x = 0; x < 31; ++x) {
        bottom_h += r.h_usage[x + 1 * 31];
        top_h += r.h_usage[x + 30 * 31];
    }
    EXPECT_GT(top_h, 0.0);
    EXPECT_GT(bottom_h, 0.0);
}

TEST(Router, RealCircuitRoutes) {
    Rng rng(7);
    Network net("r");
    std::vector<NodeId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 80; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_and2(a, b));
    }
    for (int i = 0; i < 4; ++i) net.add_output("o" + std::to_string(i),
                                               pool[pool.size() - 1 - i]);
    net.sweep();
    const DecomposeResult dr = decompose(net);
    SubjectPlacementView view = make_placement_view(dr.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    const RouteResult r = route_global(view.netlist, gp.positions, region);
    EXPECT_GT(r.total_wirelength, 0.0);
    EXPECT_GE(r.max_congestion, 0.0);
    // Routed length is at least the HPWL lower bound (both in region units),
    // up to grid quantization.
    EXPECT_GT(r.total_wirelength, total_hpwl(view.netlist, gp.positions) * 0.4);
}

TEST(Router, BetterPlacementRoutesShorter) {
    // Same netlist, random positions vs placed positions: the placed one
    // must route substantially shorter.
    Rng rng(8);
    Network net("r2");
    std::vector<NodeId> pool;
    for (int i = 0; i < 10; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 120; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_or2(a, b));
    }
    for (int i = 0; i < 5; ++i) net.add_output("o" + std::to_string(i),
                                               pool[pool.size() - 1 - i]);
    net.sweep();
    const DecomposeResult dr = decompose(net);
    SubjectPlacementView view = make_placement_view(dr.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    std::vector<Point> random_pos(view.netlist.n_cells);
    for (Point& p : random_pos) {
        p = {rng.next_double(region.ll.x, region.ur.x),
             rng.next_double(region.ll.y, region.ur.y)};
    }
    const RouteResult placed = route_global(view.netlist, gp.positions, region);
    const RouteResult scattered = route_global(view.netlist, random_pos, region);
    EXPECT_LT(placed.total_wirelength, scattered.total_wirelength * 0.8);
}

TEST(Router, MazeFallbackReducesOverflow) {
    // Funnel: many two-pin connections forced through the same column.
    PlacementNetlist nl;
    nl.n_cells = 40;
    nl.cell_area.assign(40, 1.0);
    for (std::size_t i = 0; i + 1 < 40; i += 2) {
        PlacementNetlist::Net net;
        net.cells = {i, i + 1};
        nl.nets.push_back(net);
    }
    std::vector<Point> pos(40);
    for (std::size_t i = 0; i < 40; i += 2) {
        pos[i] = {1.5, 15.5 + (i % 8) * 0.1};   // left wall
        pos[i + 1] = {30.5, 15.5 + (i % 8) * 0.1};  // right wall
    }
    const Rect region({0, 0}, {32, 32});
    RouterOptions no_maze;
    no_maze.grid = 32;
    no_maze.capacity_per_edge = 3.0;
    no_maze.maze_passes = 0;
    RouterOptions with_maze = no_maze;
    with_maze.maze_passes = 2;
    const RouteResult r0 = route_global(nl, pos, region, no_maze);
    const RouteResult r1 = route_global(nl, pos, region, with_maze);
    EXPECT_GT(r0.total_overflow, 0.0);
    EXPECT_LT(r1.total_overflow, r0.total_overflow);
    EXPECT_GT(r1.mazed_connections, 0u);
    // Detours cost wire but never less than the Manhattan lower bound.
    EXPECT_GE(r1.total_wirelength + 1e-9, r0.total_wirelength);
}

TEST(Router, MazeKeepsWirelengthWhenUncongested) {
    PlacementNetlist nl;
    nl.n_cells = 2;
    nl.cell_area = {1.0, 1.0};
    PlacementNetlist::Net net;
    net.cells = {0, 1};
    nl.nets.push_back(net);
    const std::array<Point, 2> pos{Point{2.5, 2.5}, Point{20.5, 10.5}};
    const Rect region({0, 0}, {32, 32});
    RouterOptions opts;
    opts.grid = 32;
    const RouteResult r = route_global(nl, pos, region, opts);
    EXPECT_EQ(r.mazed_connections, 0u);
    EXPECT_NEAR(r.total_wirelength, 18.0 + 8.0, 1.0);
}

// --------------------------------------------------------------- chip area

TEST(ChipArea, ScalesWithWirelengthAndOverflow) {
    RouteResult r;
    r.total_wirelength = 100.0;
    r.total_overflow = 0.0;
    const ChipAreaEstimate a = estimate_chip_area(50.0, r);
    EXPECT_DOUBLE_EQ(a.cell_area, 50.0);
    EXPECT_GT(a.routing_area, 0.0);
    EXPECT_DOUBLE_EQ(a.chip_area, a.cell_area + a.routing_area);

    RouteResult congested = r;
    congested.total_overflow = 10.0;
    const ChipAreaEstimate b = estimate_chip_area(50.0, congested);
    EXPECT_GT(b.chip_area, a.chip_area);

    RouteResult longer = r;
    longer.total_wirelength = 200.0;
    EXPECT_GT(estimate_chip_area(50.0, longer).chip_area, a.chip_area);
}

}  // namespace
}  // namespace lily
