#include <gtest/gtest.h>

#include <numeric>

#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "place/netlist_adapters.hpp"
#include "place/placement.hpp"
#include "subject/decompose.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

/// Chain of cells between two pads at the left/right region edges.
PlacementNetlist chain_netlist(std::size_t n) {
    PlacementNetlist nl;
    nl.n_cells = n;
    nl.cell_area.assign(n, 1.0);
    nl.pad_positions = {{-10.0, 0.0}, {10.0, 0.0}};
    {
        PlacementNetlist::Net first;
        first.pads = {0};
        first.cells = {0};
        nl.nets.push_back(first);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        PlacementNetlist::Net net;
        net.cells = {i, i + 1};
        nl.nets.push_back(net);
    }
    {
        PlacementNetlist::Net last;
        last.pads = {1};
        last.cells = {n - 1};
        nl.nets.push_back(last);
    }
    return nl;
}

Network random_network(std::uint64_t seed, unsigned n_pi = 10, unsigned n_gates = 120) {
    Rng rng(seed);
    Network net("rand" + std::to_string(seed));
    std::vector<NodeId> pool;
    for (unsigned i = 0; i < n_pi; ++i) pool.push_back(net.add_input("pi" + std::to_string(i)));
    for (unsigned i = 0; i < n_gates; ++i) {
        std::vector<NodeId> ins;
        for (unsigned j = 0; j < 2 + rng.next_below(3); ++j) {
            ins.push_back(pool[rng.next_below(pool.size())]);
        }
        std::sort(ins.begin(), ins.end());
        ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
        pool.push_back(rng.next_bool() ? net.make_and(ins) : net.make_xor(ins));
    }
    for (unsigned i = 0; i < 6; ++i) net.add_output("po" + std::to_string(i),
                                                    pool[pool.size() - 1 - i]);
    net.sweep();
    return net;
}

// ------------------------------------------------------------ quadratic QP

TEST(Quadratic, ChainInterpolatesBetweenPads) {
    const PlacementNetlist nl = chain_netlist(3);
    const Rect region({-10, -10}, {10, 10});
    const GlobalPlacement gp = place_quadratic(nl, region);
    // Analytic solution of the 3-cell chain between pads at x = -10, 10:
    // equally spaced interior points -10 + 20*k/4, k = 1..3.
    EXPECT_NEAR(gp.positions[0].x, -5.0, 0.05);
    EXPECT_NEAR(gp.positions[1].x, 0.0, 0.05);
    EXPECT_NEAR(gp.positions[2].x, 5.0, 0.05);
    for (const Point& p : gp.positions) EXPECT_NEAR(p.y, 0.0, 0.05);
}

TEST(Quadratic, DisconnectedCellFallsToRegionCenter) {
    PlacementNetlist nl = chain_netlist(2);
    nl.n_cells = 3;  // cell 2 has no nets
    nl.cell_area.push_back(1.0);
    const Rect region({-10, -10}, {10, 10});
    const GlobalPlacement gp = place_quadratic(nl, region);
    EXPECT_NEAR(gp.positions[2].x, region.center().x, 1e-6);
    EXPECT_NEAR(gp.positions[2].y, region.center().y, 1e-6);
}

TEST(Quadratic, SolutionIsQuadraticMinimum) {
    // Perturbing any cell of the solved placement must not lower the
    // quadratic objective (first-order optimality, up to anchor epsilon).
    const Network net = random_network(7, 8, 60);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_quadratic(view.netlist, region);
    const double base = quadratic_objective(view.netlist, gp.positions);
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        auto perturbed = gp.positions;
        const std::size_t c = rng.next_below(perturbed.size());
        perturbed[c].x += rng.next_double(-1.0, 1.0);
        perturbed[c].y += rng.next_double(-1.0, 1.0);
        EXPECT_GE(quadratic_objective(view.netlist, perturbed) + 1e-6, base);
    }
}

// -------------------------------------------------------- global placement

TEST(GlobalPlace, AllCellsInsideRegion) {
    const Network net = random_network(11);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    for (const Point& p : gp.positions) EXPECT_TRUE(region.contains(p));
    EXPECT_GT(gp.partition_levels, 0u);
}

TEST(GlobalPlace, BalancedAcrossQuadrants) {
    // The paper requires a *balanced* global placement: no grossly over- or
    // under-subscribed subregions (Section 3.1).
    const Network net = random_network(12, 12, 200);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);

    const Point c = region.center();
    double quad_area[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < gp.positions.size(); ++i) {
        const int q = (gp.positions[i].x >= c.x ? 1 : 0) + (gp.positions[i].y >= c.y ? 2 : 0);
        quad_area[q] += view.netlist.cell_area[i];
    }
    const double total = view.netlist.total_cell_area();
    for (const double qa : quad_area) {
        EXPECT_GT(qa, total * 0.10);  // nothing starved
        EXPECT_LT(qa, total * 0.45);  // nothing hoarding
    }
}

TEST(GlobalPlace, SpreadsBeyondQuadraticClump) {
    const Network net = random_network(13, 10, 150);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement qp = place_quadratic(view.netlist, region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    // Partitioned placement occupies a larger bounding box than the pure
    // quadratic solution (which famously clumps toward the center).
    const Rect bb_qp = bounding_box(qp.positions);
    const Rect bb_gp = bounding_box(gp.positions);
    EXPECT_GT(bb_gp.area(), bb_qp.area() * 0.9);
    EXPECT_GT(bb_gp.area(), region.area() * 0.3);
}

TEST(GlobalPlace, DeterministicAcrossRuns) {
    const Network net = random_network(14);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement a = place_global(view.netlist, region);
    const GlobalPlacement b = place_global(view.netlist, region);
    ASSERT_EQ(a.positions.size(), b.positions.size());
    for (std::size_t i = 0; i < a.positions.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.positions[i].x, b.positions[i].x);
        EXPECT_DOUBLE_EQ(a.positions[i].y, b.positions[i].y);
    }
}

// -------------------------------------------------------------------- pads

TEST(Pads, UniformRingOnBoundary) {
    const Rect region({0, 0}, {10, 6});
    const auto ring = uniform_pad_ring(8, region);
    ASSERT_EQ(ring.size(), 8u);
    for (const Point& p : ring) {
        const bool on_x_edge = std::abs(p.x - 0.0) < 1e-9 || std::abs(p.x - 10.0) < 1e-9;
        const bool on_y_edge = std::abs(p.y - 0.0) < 1e-9 || std::abs(p.y - 6.0) < 1e-9;
        EXPECT_TRUE(on_x_edge || on_y_edge) << p.x << "," << p.y;
    }
    // Distinct slots.
    for (std::size_t i = 0; i < ring.size(); ++i) {
        for (std::size_t j = i + 1; j < ring.size(); ++j) {
            EXPECT_GT(manhattan(ring[i], ring[j]), 1e-9);
        }
    }
}

TEST(Pads, ConnectivityDrivenBeatsArbitraryOrder) {
    // Two separate chains: pads of the same chain should end up near each
    // other, giving lower HPWL than the index-order ring.
    const Network net = random_network(15, 12, 150);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    const auto smart = place_pads(view.netlist, region);

    PlacementNetlist with_smart = view.netlist;
    with_smart.pad_positions = smart;
    PlacementNetlist with_ring = view.netlist;
    with_ring.pad_positions = uniform_pad_ring(smart.size(), region);

    const GlobalPlacement gp_smart = place_global(with_smart, region);
    const GlobalPlacement gp_ring = place_global(with_ring, region);
    EXPECT_LE(total_hpwl(with_smart, gp_smart.positions),
              total_hpwl(with_ring, gp_ring.positions) * 1.10);
}

TEST(Pads, AllOnBoundaryAndDistinct) {
    const Network net = random_network(16);
    const DecomposeResult r = decompose(net);
    const SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    const auto pads = place_pads(view.netlist, region);
    ASSERT_EQ(pads.size(), view.netlist.pad_positions.size());
    for (std::size_t i = 0; i < pads.size(); ++i) {
        const Point& p = pads[i];
        const bool on_edge = std::abs(p.x - region.ll.x) < 1e-9 ||
                             std::abs(p.x - region.ur.x) < 1e-9 ||
                             std::abs(p.y - region.ll.y) < 1e-9 ||
                             std::abs(p.y - region.ur.y) < 1e-9;
        EXPECT_TRUE(on_edge);
        for (std::size_t j = i + 1; j < pads.size(); ++j) {
            EXPECT_GT(manhattan(pads[i], pads[j]), 1e-9);
        }
    }
}

// -------------------------------------------------------------------- rows

TEST(Rows, LegalizationAssignsRowsWithoutOverlap) {
    const Network net = random_network(17, 10, 150);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    const DetailedPlacement dp = legalize_rows(view.netlist, gp);

    ASSERT_EQ(dp.positions.size(), view.netlist.n_cells);
    EXPECT_GT(dp.n_rows, 1u);
    // Same-row cells must not overlap horizontally.
    for (std::size_t i = 0; i < dp.positions.size(); ++i) {
        for (std::size_t j = i + 1; j < dp.positions.size(); ++j) {
            if (dp.row_of[i] != dp.row_of[j]) continue;
            const double wi = view.netlist.cell_area[i] / dp.row_height;
            const double wj = view.netlist.cell_area[j] / dp.row_height;
            EXPECT_GE(std::abs(dp.positions[i].x - dp.positions[j].x) + 1e-9,
                      (wi + wj) / 2.0);
        }
    }
    // Rows are distinct y coordinates.
    for (std::size_t i = 0; i < dp.positions.size(); ++i) {
        EXPECT_TRUE(region.contains(dp.positions[i]));
    }
}

TEST(Rows, LegalizationPreservesNeighborhoods) {
    // Detailed placement should not blow up wirelength versus the global
    // placement (factor bounded; it usually shrinks x-spread only mildly).
    const Network net = random_network(18, 10, 120);
    const DecomposeResult r = decompose(net);
    SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    const DetailedPlacement dp = legalize_rows(view.netlist, gp);
    const double hp_global = total_hpwl(view.netlist, gp.positions);
    const double hp_detail = total_hpwl(view.netlist, dp.positions);
    EXPECT_LT(hp_detail, hp_global * 2.0);
}

TEST(Rows, BadUtilizationRejected) {
    const PlacementNetlist nl = chain_netlist(2);
    GlobalPlacement gp;
    gp.region = Rect({-10, -10}, {10, 10});
    gp.positions = {{0, 0}, {1, 1}};
    EXPECT_THROW(legalize_rows(nl, gp, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(legalize_rows(nl, gp, 1.0, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------- adapters

TEST(Adapters, SubjectViewShapesMatch) {
    const Network net = random_network(19);
    const DecomposeResult r = decompose(net);
    const SubjectPlacementView view = make_placement_view(r.graph);
    EXPECT_EQ(view.netlist.n_cells, r.graph.gate_count());
    EXPECT_EQ(view.netlist.pad_positions.size(),
              r.graph.inputs().size() + r.graph.outputs().size());
    // cell_of / subject_of are inverse maps.
    for (std::size_t c = 0; c < view.subject_of.size(); ++c) {
        EXPECT_EQ(view.cell_of[view.subject_of[c]], c);
    }
}

TEST(Adapters, MappedViewUsesGateAreas) {
    const Network net = random_network(20);
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_big();
    const MapResult res = BaseMapper(lib).map(r.graph);
    const MappedPlacementView view = make_placement_view(res.netlist, lib);
    EXPECT_EQ(view.netlist.n_cells, res.netlist.gate_count());
    double area = 0.0;
    for (const double a : view.netlist.cell_area) area += a;
    EXPECT_NEAR(area, res.total_area, 1e-9);
    view.netlist.check();
}

TEST(Adapters, NetCountsReasonable) {
    const Network net = random_network(22);
    const DecomposeResult r = decompose(net);
    const SubjectPlacementView view = make_placement_view(r.graph);
    // Every multi-fanout or PO-driving signal yields one net.
    EXPECT_GT(view.netlist.nets.size(), 0u);
    for (const auto& n : view.netlist.nets) EXPECT_GE(n.pin_count(), 2u);
}

TEST(Adapters, RegionScalesWithArea) {
    const Rect small = make_region(100.0);
    const Rect large = make_region(400.0);
    EXPECT_NEAR(large.width() / small.width(), 2.0, 1e-9);
    EXPECT_NEAR(small.center().x, 0.0, 1e-12);
}

}  // namespace
}  // namespace lily
