#include <gtest/gtest.h>

#include <fstream>

#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/verilog.hpp"
#include "netlist/simulate.hpp"
#include "place/netlist_adapters.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

struct Mapped {
    Library lib = load_msu_big();
    Network net;
    MappedNetlist netlist;
};

Mapped map_small() {
    Mapped m;
    m.net = make_priority_controller(8);
    const DecomposeResult sub = decompose(m.net);
    m.netlist = LilyMapper(m.lib).map(sub.graph).netlist;
    return m;
}

// ---------------------------------------------------------------- verilog

TEST(Verilog, StructureOfOutput) {
    const Mapped m = map_small();
    const std::string v = write_verilog(m.netlist, m.lib, "prio");
    EXPECT_NE(v.find("module prio ("), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    // Every PI is declared as input, every PO as output.
    for (const std::string& n : m.netlist.subject_input_names) {
        EXPECT_NE(v.find("input " + n + ";"), std::string::npos) << n;
    }
    for (const MappedOutput& po : m.netlist.outputs) {
        EXPECT_NE(v.find("output " + po.name), std::string::npos) << po.name;
    }
    // One instance per gate, named u<i>.
    EXPECT_NE(v.find(" u0 ("), std::string::npos);
    EXPECT_NE(v.find(" u" + std::to_string(m.netlist.gate_count() - 1) + " ("),
              std::string::npos);
    // Cell names from the library appear.
    bool found_cell = false;
    for (const Gate& g : m.lib.gates()) {
        if (v.find("  " + g.name + " u") != std::string::npos) found_cell = true;
    }
    EXPECT_TRUE(found_cell);
}

TEST(Verilog, SanitizesAwkwardNames) {
    Network net("weird");
    const NodeId a = net.add_input("sig[3]");
    const NodeId b = net.add_input("2bad");
    net.add_output("out.x", net.make_and2(a, b));
    const Library lib = load_msu_big();
    const DecomposeResult sub = decompose(net);
    const MappedNetlist m = LilyMapper(lib).map(sub.graph).netlist;
    const std::string v = write_verilog(m, lib);
    EXPECT_EQ(v.find('['), std::string::npos);
    EXPECT_EQ(v.find('.'), v.find(".O("));  // only pin connections use '.'
    EXPECT_NE(v.find("sig_3_"), std::string::npos);
    EXPECT_NE(v.find("n2bad"), std::string::npos);
}

TEST(Verilog, FileWriting) {
    const Mapped m = map_small();
    const std::string path = ::testing::TempDir() + "/lily_out.v";
    write_verilog_file(m.netlist, m.lib, path, "prio");
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(text, write_verilog(m.netlist, m.lib, "prio"));
}

// ------------------------------------------------------------ improve_rows

TEST(ImproveRows, NeverIncreasesHpwl) {
    const Network net = make_control_logic(12, 8, 150, 0xAB, "ir");
    const DecomposeResult sub = decompose(net);
    SubjectPlacementView view = make_placement_view(sub.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    DetailedPlacement dp = legalize_rows(view.netlist, gp);
    const double before = total_hpwl(view.netlist, dp.positions);
    const std::size_t swaps = improve_rows(view.netlist, dp);
    const double after = total_hpwl(view.netlist, dp.positions);
    EXPECT_LE(after, before + 1e-9);
    if (swaps > 0) {
        EXPECT_LT(after, before);
    }
    // Rows still non-overlapping.
    for (std::size_t i = 0; i < dp.positions.size(); ++i) {
        for (std::size_t j = i + 1; j < dp.positions.size(); ++j) {
            if (dp.row_of[i] != dp.row_of[j]) continue;
            const double wi = view.netlist.cell_area[i] / dp.row_height;
            const double wj = view.netlist.cell_area[j] / dp.row_height;
            EXPECT_GE(std::abs(dp.positions[i].x - dp.positions[j].x) + 1e-9, (wi + wj) / 2.0);
        }
    }
}

TEST(ImproveRows, IdempotentAtFixpoint) {
    const Network net = make_control_logic(10, 6, 80, 0xCD, "ir2");
    const DecomposeResult sub = decompose(net);
    SubjectPlacementView view = make_placement_view(sub.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    view.netlist.pad_positions = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(view.netlist, region);
    DetailedPlacement dp = legalize_rows(view.netlist, gp);
    improve_rows(view.netlist, dp, 16);
    EXPECT_EQ(improve_rows(view.netlist, dp, 16), 0u);
}

// ---------------------------------------------------------------- flat PLA

TEST(FlatPla, MatchesTreePlaFunction) {
    // Same seed/parameters: the flat and tree-shaped PLAs compute the same
    // functions (same RNG draw schedule by construction).
    const Network tree = make_pla(12, 8, 30, 0x99, "p");
    const Network flat = make_pla_flat(12, 8, 30, 0x99, "p");
    EXPECT_TRUE(equivalent_random(tree, flat, 16, 21));
    // Flat: one logic node per output.
    EXPECT_EQ(flat.logic_node_count(), flat.outputs().size());
    EXPECT_THROW(make_pla_flat(65, 4, 10, 1, "x"), std::invalid_argument);
}

}  // namespace
}  // namespace lily
