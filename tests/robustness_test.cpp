// Fault-tolerance tests for the flow engine: every injected fault and
// exhausted budget must complete run_lily_flow_checked without crashing,
// record the degradation rung in FlowDiagnostics, and still hand back a
// mapped netlist that survives the paranoid invariant checkers. A no-fault
// run must stay bit-identical to itself and report a clean record.
#include <gtest/gtest.h>

#include <string>

#include "check/mapped_checker.hpp"
#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/library.hpp"
#include "library/standard_cells.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace lily {
namespace {

/// Restores the (process-global) fault spec when a test exits, so a failing
/// assertion cannot leak a fault into later tests.
class FaultGuard {
public:
    explicit FaultGuard(std::string spec) { set_fault_spec(std::move(spec)); }
    ~FaultGuard() { set_fault_spec(""); }
};

Network test_network() { return make_priority_controller(10); }

/// Shared postcondition for every fault scenario: the flow completed, the
/// result is non-trivial, and the mapped netlist passes the paranoid
/// checker against the source network.
void expect_usable(const StatusOr<FlowResult>& res, const Network& net, const Library& lib) {
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    const FlowResult& flow = res.value();
    EXPECT_GT(flow.metrics.gate_count, 0u);
    EXPECT_GT(flow.metrics.chip_area, 0.0);
    const CheckReport report = MappedChecker(lib).check_against(flow.netlist, net);
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_TRUE(equivalent_random(net, flow.netlist.to_network(lib), 8, 3));
}

TEST(Robustness, PlacementDivergenceFallsBackToBaseline) {
    FaultGuard fault("placement:diverge");
    const Library lib = load_msu_big();
    const Network net = test_network();
    const StatusOr<FlowResult> res = run_lily_flow_checked(net, lib);
    expect_usable(res, net, lib);
    const StageDiagnostics* mapping = res.value().diagnostics.find("mapping");
    ASSERT_NE(mapping, nullptr);
    EXPECT_EQ(mapping->state, StageState::Recovered);
    EXPECT_NE(mapping->note.find("baseline"), std::string::npos) << mapping->note;
    EXPECT_TRUE(res.value().diagnostics.degraded());
}

TEST(Robustness, MatcherDeadEndFallsBackToBaseline) {
    FaultGuard fault("matcher:no-match");
    const Library lib = load_msu_big();
    const Network net = test_network();
    const StatusOr<FlowResult> res = run_lily_flow_checked(net, lib);
    expect_usable(res, net, lib);
    const StageDiagnostics* mapping = res.value().diagnostics.find("mapping");
    ASSERT_NE(mapping, nullptr);
    EXPECT_EQ(mapping->state, StageState::Recovered);
}

TEST(Robustness, RouterOverbudgetReportsHpwlMetrics) {
    FaultGuard fault("router:overbudget");
    const Library lib = load_msu_big();
    const Network net = test_network();
    const StatusOr<FlowResult> res = run_lily_flow_checked(net, lib);
    expect_usable(res, net, lib);
    const StageDiagnostics* routing = res.value().diagnostics.find("routing");
    ASSERT_NE(routing, nullptr);
    EXPECT_EQ(routing->state, StageState::Degraded);
    EXPECT_NE(routing->note.find("HPWL"), std::string::npos) << routing->note;
    EXPECT_GT(res.value().metrics.wirelength, 0.0);
}

TEST(Robustness, ParserSkipGateLoadsRestOfLibrary) {
    FaultGuard fault("parser:skip-gate");
    const Library lib = load_msu_big();
    ASSERT_FALSE(lib.skipped_gates().empty());
    EXPECT_NE(lib.skipped_gates()[0].reason.find("skip-gate"), std::string::npos);
    // The thinned library must still carry a full flow.
    const Network net = test_network();
    expect_usable(run_lily_flow_checked(net, lib), net, lib);
}

TEST(Robustness, FallbackDisabledSurfacesTheFailure) {
    FaultGuard fault("placement:diverge");
    const Library lib = load_msu_big();
    FlowOptions opts;
    opts.recovery.allow_baseline_fallback = false;
    const StatusOr<FlowResult> res = run_lily_flow_checked(test_network(), lib, opts);
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), StatusCode::ConvergenceFailure);
}

TEST(Robustness, TinyBudgetDegradesButCompletes) {
    const Library lib = load_msu_big();
    const Network net = test_network();
    FlowOptions opts;
    opts.budget.total_ms = 0.001;  // exhausts immediately; every rung fires
    const StatusOr<FlowResult> res = run_lily_flow_checked(net, lib, opts);
    expect_usable(res, net, lib);
    EXPECT_TRUE(res.value().diagnostics.degraded())
        << res.value().diagnostics.to_string();
}

TEST(Robustness, NoFaultRunIsCleanAndDeterministic) {
    const Library lib = load_msu_big();
    const Network net = test_network();
    const StatusOr<FlowResult> a = run_lily_flow_checked(net, lib);
    const StatusOr<FlowResult> b = run_lily_flow_checked(net, lib);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_FALSE(a.value().diagnostics.degraded()) << a.value().diagnostics.to_string();
    EXPECT_EQ(a.value().metrics.gate_count, b.value().metrics.gate_count);
    EXPECT_DOUBLE_EQ(a.value().metrics.chip_area, b.value().metrics.chip_area);
    EXPECT_DOUBLE_EQ(a.value().metrics.wirelength, b.value().metrics.wirelength);
    EXPECT_DOUBLE_EQ(a.value().metrics.critical_delay, b.value().metrics.critical_delay);
}

TEST(Robustness, FlowFromFilesReportsParseStage) {
    const std::string bad = std::string(LILY_SOURCE_DIR) + "/tests/data/bad/truncated.blif";
    const std::string genlib = std::string(LILY_SOURCE_DIR) + "/lib/msu_big.genlib";
    const StatusOr<FlowResult> res = run_flow_from_files(bad, genlib);
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), StatusCode::ParseError);
    EXPECT_NE(res.status().to_string().find("missing .end"), std::string::npos)
        << res.status().to_string();
}

TEST(Robustness, VerifyMiscompareRefutedAtEveryThreadCount) {
    // The flipped gate must be caught by the prover — with a replayable
    // counterexample, not a vague failure — regardless of how the parallel
    // kernels carve up the work.
    FaultGuard fault("verify:miscompare");
    const Library lib = load_msu_big();
    const Network net = test_network();
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        FlowOptions opts;
        opts.threads = threads;
        opts.verify = VerifyLevel::Prove;
        const StatusOr<FlowResult> res = run_lily_flow_checked(net, lib, opts);
        ASSERT_FALSE(res.is_ok()) << "threads=" << threads;
        EXPECT_EQ(res.status().code(), StatusCode::InvariantViolation) << "threads=" << threads;
        EXPECT_NE(res.status().to_string().find("counterexample"), std::string::npos)
            << "threads=" << threads << ": " << res.status().to_string();
    }
}

TEST(Robustness, VerifyMiscompareCaughtBySimulationRungToo) {
    FaultGuard fault("verify:miscompare");
    const Library lib = load_msu_big();
    FlowOptions opts;
    opts.verify = VerifyLevel::Sim;
    const StatusOr<FlowResult> res = run_lily_flow_checked(test_network(), lib, opts);
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), StatusCode::InvariantViolation);
}

// --- Malformed BLIF corpus ------------------------------------------------

StatusOr<Network> read_bad(const char* name) {
    return read_blif_file_checked(std::string(LILY_SOURCE_DIR) + "/tests/data/bad/" + name);
}

void expect_parse_error(const char* file, const char* needle) {
    const StatusOr<Network> res = read_bad(file);
    ASSERT_FALSE(res.is_ok()) << file;
    EXPECT_EQ(res.status().code(), StatusCode::ParseError) << file;
    EXPECT_NE(res.status().to_string().find(needle), std::string::npos)
        << file << ": " << res.status().to_string();
}

TEST(BadBlifCorpus, Diagnosed) {
    expect_parse_error("truncated.blif", "missing .end");
    expect_parse_error("dup_driver.blif", "duplicate .names driver");
    expect_parse_error("self_latch.blif", "self-referential latch");
    expect_parse_error("bad_cube.blif", "cube characters must be 0, 1 or -");
    expect_parse_error("undefined_output.blif", "never defined");
}

TEST(BadBlifCorpus, ErrorsCarryLineNumbers) {
    const StatusOr<Network> res = read_bad("self_latch.blif");
    ASSERT_FALSE(res.is_ok());
    // Line 5 holds the .latch statement.
    EXPECT_NE(res.status().to_string().find("blif:5"), std::string::npos)
        << res.status().to_string();
}

// --- Status / StageBudget / fault-registry units --------------------------

TEST(StatusUnits, ContextChainsAndRaiseMapping) {
    Status s(StatusCode::ParseError, "bad token");
    s.with_context("file.blif").with_context("run_flow");
    const std::string text = s.to_string();
    EXPECT_NE(text.find("run_flow"), std::string::npos);
    EXPECT_NE(text.find("file.blif"), std::string::npos);
    EXPECT_NE(text.find("bad token"), std::string::npos);

    EXPECT_THROW(Status(StatusCode::InvariantViolation, "x").raise(), std::logic_error);
    EXPECT_THROW(Status(StatusCode::ParseError, "x").raise(), std::runtime_error);
}

TEST(StatusUnits, StatusOrRoundTrip) {
    StatusOr<int> good = 42;
    ASSERT_TRUE(good.is_ok());
    EXPECT_EQ(good.value(), 42);
    StatusOr<int> bad = Status(StatusCode::Unsupported, "nope");
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::Unsupported);
    EXPECT_THROW(std::move(bad).take_or_raise(), std::runtime_error);
}

TEST(BudgetUnits, IterationCapExhausts) {
    StageBudget b = StageBudget::iterations(3);
    EXPECT_TRUE(b.limited());
    EXPECT_TRUE(b.tick());
    EXPECT_TRUE(b.tick());
    EXPECT_FALSE(b.tick());  // third tick consumes the last slot
    EXPECT_TRUE(b.exhausted());
}

TEST(BudgetUnits, UnlimitedNeverExhausts) {
    StageBudget b;
    EXPECT_FALSE(b.limited());
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.tick());
    EXPECT_FALSE(b.exhausted());
}

TEST(BudgetUnits, StageIntersectsParentDeadline) {
    const StageBudget parent = StageBudget::deadline_ms(1000.0);
    const StageBudget child = StageBudget::stage(0.0, parent);
    EXPECT_TRUE(child.limited());
    EXPECT_LE(child.remaining_ms(), 1000.0);
}

TEST(FaultUnits, SpecParsingAndScoping) {
    FaultGuard fault("placement:diverge,router:overbudget");
    EXPECT_TRUE(fault_enabled("placement"));
    EXPECT_TRUE(fault_enabled("placement", "diverge"));
    EXPECT_FALSE(fault_enabled("placement", "other"));
    EXPECT_TRUE(fault_enabled("router", "overbudget"));
    EXPECT_FALSE(fault_enabled("matcher"));
}

TEST(FaultUnits, ClearedSpecDisablesEverything) {
    { FaultGuard fault("matcher:no-match"); }
    EXPECT_FALSE(fault_enabled("matcher"));
    EXPECT_FALSE(fault_enabled("parser"));
}

}  // namespace
}  // namespace lily
