#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "netlist/simulate.hpp"

namespace lily {
namespace {

TEST(Flow, BaselinePipelineEndToEnd) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    const FlowResult res = run_baseline_flow(net, lib);
    EXPECT_GT(res.metrics.gate_count, 0u);
    EXPECT_GT(res.metrics.cell_area, 0.0);
    EXPECT_GT(res.metrics.chip_area, res.metrics.cell_area);
    EXPECT_GT(res.metrics.wirelength, 0.0);
    EXPECT_GT(res.metrics.critical_delay, 0.0);
    EXPECT_EQ(res.final_positions.size(), res.metrics.gate_count);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 3));
}

TEST(Flow, LilyPipelineEndToEnd) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    const FlowResult res = run_lily_flow(net, lib);
    EXPECT_GT(res.metrics.gate_count, 0u);
    EXPECT_GT(res.metrics.chip_area, res.metrics.cell_area);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 3));
}

TEST(Flow, DelayModePipelines) {
    const Library lib = load_msu_big();
    const Network net = make_alu(5, false);
    FlowOptions opts;
    opts.objective = MapObjective::Delay;
    const FlowResult base = run_baseline_flow(net, lib, opts);
    const FlowResult lily = run_lily_flow(net, lib, opts);
    EXPECT_GT(base.metrics.critical_delay, 0.0);
    EXPECT_GT(lily.metrics.critical_delay, 0.0);
    EXPECT_TRUE(equivalent_random(net, base.netlist.to_network(lib), 8, 4));
    EXPECT_TRUE(equivalent_random(net, lily.netlist.to_network(lib), 8, 4));
}

TEST(Flow, MetricsUnitConversions) {
    FlowMetrics m;
    m.cell_area = 1000.0;  // units of 0.001 mm^2
    m.chip_area = 3000.0;
    m.wirelength = 100.0;
    EXPECT_NEAR(m.cell_area_mm2(), 1.0, 1e-12);
    EXPECT_NEAR(m.chip_area_mm2(), 3.0, 1e-12);
    EXPECT_NEAR(m.wirelength_mm(), 3.16227766, 1e-6);
}

TEST(Flow, BackendPadMismatchRejected) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(8);
    const FlowResult base = run_baseline_flow(net, lib);
    PadsInRegion pads{{Point{0, 0}}, Rect({0, 0}, {1, 1})};  // wrong count
    EXPECT_THROW(run_backend(base.netlist, lib, {}, pads), std::logic_error);
}

TEST(Flow, SuiteShapeOnSmallScale) {
    // The headline comparison on a couple of suite circuits: Lily should
    // not lose badly on wirelength (the paper's average is a 7% win; at
    // tiny scale we only require "within 15%" to keep the test stable).
    const Library lib = load_msu_big();
    int lily_wins = 0, comparisons = 0;
    for (const char* name : {"b9", "duke2", "C880"}) {
        const auto suite = paper_suite(0.3);
        const auto it = std::find_if(suite.begin(), suite.end(),
                                     [&](const Benchmark& b) { return b.name == name; });
        ASSERT_NE(it, suite.end());
        const FlowResult base = run_baseline_flow(it->network, lib);
        const FlowResult lily = run_lily_flow(it->network, lib);
        EXPECT_LT(lily.metrics.wirelength, base.metrics.wirelength * 1.15) << name;
        if (lily.metrics.wirelength < base.metrics.wirelength) ++lily_wins;
        ++comparisons;
        // Gate counts stay in the same ballpark (wire-aware selection may
        // merge or split, but never degenerates).
        EXPECT_GE(lily.metrics.gate_count * 2, base.metrics.gate_count) << name;
        EXPECT_LE(lily.metrics.gate_count, base.metrics.gate_count * 2) << name;
    }
    EXPECT_GT(comparisons, 0);
}

}  // namespace
}  // namespace lily
