#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"

namespace lily {
namespace {

TEST(Blif, ParseSimpleAnd) {
    const Network n = read_blif(R"(
.model tiny
.inputs a b
.outputs f
.names a b f
11 1
.end
)");
    EXPECT_EQ(n.name(), "tiny");
    EXPECT_EQ(n.inputs().size(), 2u);
    EXPECT_EQ(n.outputs().size(), 1u);
    const auto v = simulate_block(n, std::array<std::uint64_t, 2>{0b1100, 0b1010});
    EXPECT_EQ(v[n.outputs()[0].driver] & 0xF, 0b1000u);
}

TEST(Blif, OffsetCubes) {
    // Rows with output 0 describe the off-set: f = NOT(a & !b).
    const Network n = read_blif(R"(
.model offs
.inputs a b
.outputs f
.names a b f
10 0
.end
)");
    const auto v = simulate_block(n, std::array<std::uint64_t, 2>{0b1100, 0b1010});
    // patterns (a,b): 00 -> 1, 01 -> 1, 10 -> 0, 11 -> 1
    EXPECT_EQ(v[n.outputs()[0].driver] & 0xF, 0b1011u);
}

TEST(Blif, DontCaresAndMultipleCubes) {
    const Network n = read_blif(R"(
.model dc
.inputs a b c
.outputs f
.names a b c f
1-- 1
-11 1
.end
)");
    std::array<std::uint64_t, 3> ins{};
    for (std::uint64_t p = 0; p < 8; ++p) {
        for (unsigned i = 0; i < 3; ++i) {
            if ((p >> i) & 1) ins[i] |= std::uint64_t{1} << p;
        }
    }
    const auto v = simulate_block(n, ins);
    for (std::uint64_t p = 0; p < 8; ++p) {
        const bool a = p & 1, b = (p >> 1) & 1, c = (p >> 2) & 1;
        EXPECT_EQ(((v[n.outputs()[0].driver] >> p) & 1) != 0, a || (b && c)) << p;
    }
}

TEST(Blif, ConstantTables) {
    const Network n = read_blif(R"(
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)");
    const auto v = simulate_block(n, std::array<std::uint64_t, 1>{0});
    EXPECT_EQ(v[n.outputs()[0].driver], ~std::uint64_t{0});
    EXPECT_EQ(v[n.outputs()[1].driver], std::uint64_t{0});
}

TEST(Blif, ForwardReferencesResolved) {
    // 'mid' is used before its .names block appears.
    const Network n = read_blif(R"(
.model fwd
.inputs a b
.outputs f
.names mid b f
11 1
.names a mid
0 1
.end
)");
    n.check();
    const auto v = simulate_block(n, std::array<std::uint64_t, 2>{0b1100, 0b1010});
    // f = !a & b. Per pattern p: a = bit p of 0b1100, b = bit p of 0b1010,
    // so only p = 1 (a=0, b=1) sets f -> word 0b0010.
    EXPECT_EQ(v[n.outputs()[0].driver] & 0xF, 0b0010u);
}

TEST(Blif, LineContinuationAndComments) {
    const Network n = read_blif(R"(
# a comment
.model cont
.inputs a \
        b
.outputs f  # trailing comment
.names a b f
11 1
.end
)");
    EXPECT_EQ(n.inputs().size(), 2u);
    EXPECT_EQ(n.outputs().size(), 1u);
}

TEST(Blif, ErrorsAreDiagnosed) {
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n"),
                 std::runtime_error);  // bad cube char
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.end\n"),
                 std::runtime_error);  // undefined output
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n"),
                 std::runtime_error);  // doubly defined
    EXPECT_THROW(read_blif(".model x\n.latch a b\n.end\n"), std::runtime_error);
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n"),
                 std::runtime_error);  // cube width mismatch
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n"),
                 std::runtime_error);  // mixed on/off rows
}

TEST(Blif, TruncatedInputMissingEnd) {
    // A document without .end is treated as truncated, not silently accepted.
    const auto r = read_blif_checked(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n");
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::ParseError);
    EXPECT_NE(r.status().message().find("missing .end"), std::string::npos)
        << r.status().message();
    EXPECT_THROW(read_blif(".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n"),
                 std::runtime_error);
}

TEST(Blif, SelfReferentialLatchDiagnosed) {
    const auto r = read_blif_checked(".model x\n.latch q q\n.end\n");
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::ParseError);
    EXPECT_NE(r.status().message().find("self-referential latch"), std::string::npos)
        << r.status().message();
    // The line number of the offending latch is part of the message.
    EXPECT_NE(r.status().message().find("blif:2"), std::string::npos) << r.status().message();
}

TEST(Blif, CheckedErrorsCarryLineNumbers) {
    const auto dup = read_blif_checked(
        ".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n");
    ASSERT_FALSE(dup.is_ok());
    EXPECT_NE(dup.status().message().find("blif:6"), std::string::npos)
        << dup.status().message();
    EXPECT_NE(dup.status().message().find("duplicate .names driver"), std::string::npos);

    const auto undef = read_blif_checked(".model x\n.inputs a\n.outputs f\n.end\n");
    ASSERT_FALSE(undef.is_ok());
    EXPECT_NE(undef.status().message().find("blif:3"), std::string::npos)
        << undef.status().message();
}

TEST(Blif, CycleDetected) {
    EXPECT_THROW(read_blif(R"(
.model cyc
.inputs a
.outputs f
.names a g f
11 1
.names f g
1 1
.end
)"),
                 std::runtime_error);
}

TEST(Blif, RoundTripPreservesFunction) {
    const char* src = R"(
.model rt
.inputs a b c d
.outputs f g
.names a b t1
10 1
01 1
.names t1 c t2
11 1
.names t2 d f
0- 1
-0 1
.names a d g
00 0
.end
)";
    const Network n1 = read_blif(src);
    const std::string dumped = write_blif(n1);
    const Network n2 = read_blif(dumped);
    EXPECT_TRUE(equivalent_random(n1, n2, 16, 321));
}

TEST(Blif, PoAliasBufferEmitted) {
    // PO name differs from driver: writer must synthesize a buffer.
    Network n("alias");
    const NodeId a = n.add_input("a");
    const NodeId b = n.add_input("b");
    const NodeId g = n.make_and2(a, b);
    n.add_output("result", g);
    const Network round = read_blif(write_blif(n));
    ASSERT_EQ(round.outputs().size(), 1u);
    EXPECT_EQ(round.outputs()[0].name, "result");
    EXPECT_TRUE(equivalent_random(n, round, 8, 42));
}

TEST(Blif, OutputDrivenByInput) {
    const Network n = read_blif(R"(
.model wire
.inputs a
.outputs a
.end
)");
    EXPECT_EQ(n.outputs()[0].driver, n.inputs()[0]);
    const Network round = read_blif(write_blif(n));
    EXPECT_TRUE(equivalent_random(n, round, 4, 7));
}

}  // namespace
}  // namespace lily
