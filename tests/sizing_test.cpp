#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "netlist/simulate.hpp"
#include "sta/gate_sizing.hpp"

namespace lily {
namespace {

struct Sized {
    Library lib = load_msu_big();
    Network net;
    FlowResult flow;
    SizingResult result;
};

Sized run_sizing(Network net, MapObjective objective) {
    Sized out;
    out.net = std::move(net);
    FlowOptions opts;
    opts.objective = objective;
    out.flow = run_lily_flow(out.net, out.lib, opts);
    MappedPlacementView view = make_placement_view(out.flow.netlist, out.lib);
    view.netlist.pad_positions = out.flow.pad_positions;
    out.result = size_gates(out.flow.netlist, out.lib, view, out.flow.final_positions);
    return out;
}

TEST(GateSizing, NeverIncreasesDelay) {
    for (const char* name : {"b9", "C880", "misex1"}) {
        const auto suite = paper_suite(0.3);
        const auto it = std::find_if(suite.begin(), suite.end(),
                                     [&](const Benchmark& b) { return b.name == name; });
        ASSERT_NE(it, suite.end());
        for (const MapObjective obj : {MapObjective::Area, MapObjective::Delay}) {
            const Sized s = run_sizing(it->network, obj);
            EXPECT_LE(s.result.delay_after, s.result.delay_before + 1e-9) << name;
        }
    }
}

TEST(GateSizing, PreservesFunction) {
    const Sized s = run_sizing(make_alu(6, false), MapObjective::Area);
    EXPECT_TRUE(equivalent_random(s.net, s.flow.netlist.to_network(s.lib), 16, 31));
}

TEST(GateSizing, AreaMappedCircuitsImprove) {
    // Area mapping picks the weakest (smallest) drives; sizing under real
    // loads should find swaps and cut the critical delay somewhere in the
    // suite.
    std::size_t total_swaps = 0;
    double best_gain = 0.0;
    for (const char* name : {"C880", "apex7", "b9", "C1908"}) {
        const auto suite = paper_suite(0.4);
        const auto it = std::find_if(suite.begin(), suite.end(),
                                     [&](const Benchmark& b) { return b.name == name; });
        ASSERT_NE(it, suite.end());
        const Sized s = run_sizing(it->network, MapObjective::Area);
        total_swaps += s.result.swaps;
        if (s.result.delay_before > 0.0) {
            best_gain = std::max(best_gain,
                                 1.0 - s.result.delay_after / s.result.delay_before);
        }
    }
    EXPECT_GT(total_swaps, 0u);
    EXPECT_GT(best_gain, 0.0);
}

TEST(GateSizing, SwapsOnlyWithinFunctionGroups) {
    const Library lib = load_msu_big();
    Network net = make_priority_controller(10);
    FlowOptions opts;
    opts.objective = MapObjective::Area;
    FlowResult flow = run_lily_flow(net, lib, opts);
    const std::vector<GateInstance> before = flow.netlist.gates;
    MappedPlacementView view = make_placement_view(flow.netlist, lib);
    view.netlist.pad_positions = flow.pad_positions;
    size_gates(flow.netlist, lib, view, flow.final_positions);
    ASSERT_EQ(flow.netlist.gates.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        const Gate& old_gate = lib.gate(before[i].gate);
        const Gate& new_gate = lib.gate(flow.netlist.gates[i].gate);
        EXPECT_EQ(old_gate.function, new_gate.function) << i;
        EXPECT_EQ(old_gate.n_inputs(), new_gate.n_inputs()) << i;
        EXPECT_EQ(flow.netlist.gates[i].inputs, before[i].inputs) << i;
    }
}

TEST(GateSizing, DriveVariantsExistInBigLibrary) {
    const Library lib = load_msu_big();
    // nand2 and nand2x2 must form a swap group.
    const auto a = lib.find("nand2");
    const auto b = lib.find("nand2x2");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(lib.gate(*a).function, lib.gate(*b).function);
    EXPECT_LT(lib.gate(*b).pin(0).worst_fanout(), lib.gate(*a).pin(0).worst_fanout());
    EXPECT_GT(lib.gate(*b).area, lib.gate(*a).area);
}

}  // namespace
}  // namespace lily
