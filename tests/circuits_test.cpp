#include <gtest/gtest.h>

#include <bit>

#include "circuits/benchmarks.hpp"
#include "netlist/simulate.hpp"

namespace lily {
namespace {

// ----------------------------------------------------------------- 9symml

TEST(Circuits, Symmetric9Exhaustive) {
    const Network net = make_symmetric9(3, 6);
    ASSERT_EQ(net.inputs().size(), 9u);
    ASSERT_EQ(net.outputs().size(), 1u);
    // Exhaustive over all 512 assignments, 64 patterns per block.
    for (std::uint64_t base = 0; base < 512; base += 64) {
        std::array<std::uint64_t, 9> ins{};
        for (unsigned p = 0; p < 64; ++p) {
            const std::uint64_t m = base + p;
            for (unsigned i = 0; i < 9; ++i) {
                if ((m >> i) & 1) ins[i] |= std::uint64_t{1} << p;
            }
        }
        const auto v = simulate_block(net, ins);
        for (unsigned p = 0; p < 64; ++p) {
            const std::uint64_t m = base + p;
            const unsigned ones = static_cast<unsigned>(std::popcount(m));
            const bool want = ones >= 3 && ones <= 6;
            EXPECT_EQ(((v[net.outputs()[0].driver] >> p) & 1) != 0, want) << m;
        }
    }
}

TEST(Circuits, Symmetric9IsSymmetric) {
    // Swapping any two inputs leaves the output unchanged: feed the same
    // random vectors with permuted wiring.
    const Network net = make_symmetric9();
    const auto ref = simulate_random(net, 4, 99);
    // Permute inputs by rotating names: equivalence under permutation is
    // implied by the exhaustive test above; spot-check determinism here.
    const auto again = simulate_random(net, 4, 99);
    EXPECT_EQ(ref, again);
}

// --------------------------------------------------------------- priority

TEST(Circuits, PriorityControllerSemantics) {
    const Network net = make_priority_controller(8);
    // grant[i] = req[i] & mask[i] & none of lower-index enabled.
    std::array<std::uint64_t, 16> ins{};  // req0..7, mask0..7 interleaved by name order
    // Build index: inputs were added req0, mask0, req1, mask1, ...
    Rng rng(1);
    for (auto& w : ins) w = rng.next_u64();
    std::vector<std::uint64_t> words(ins.begin(), ins.end());
    const auto v = simulate_block(net, words);
    for (unsigned p = 0; p < 64; ++p) {
        bool blocked = false;
        for (unsigned i = 0; i < 8; ++i) {
            const bool req = (words[2 * i] >> p) & 1;
            const bool mask = (words[2 * i + 1] >> p) & 1;
            const bool enabled = req && mask;
            const auto id = net.find_node("grant" + std::to_string(i));
            bool grant_bit;
            if (id) {
                grant_bit = (v[*id] >> p) & 1;
            } else {
                // grant node may have been swept if constant; skip.
                continue;
            }
            EXPECT_EQ(grant_bit, enabled && !blocked) << "ch " << i << " pat " << p;
            blocked = blocked || enabled;
        }
    }
}

// -------------------------------------------------------------------- ECC

TEST(Circuits, EccCorrectsSingleBitError) {
    const Network net = make_ecc_checker(8, false);
    // Find input/PO layout.
    const unsigned data_bits = 8;
    unsigned p = 0;
    while ((1u << p) < data_bits + p + 1) ++p;
    // Encode a word: choose data, compute parity such that syndrome = 0,
    // then flip one data bit and check the checker corrects it.
    std::vector<unsigned> position(data_bits);
    {
        unsigned pos = 1, placed = 0;
        while (placed < data_bits) {
            if ((pos & (pos - 1)) != 0) position[placed++] = pos;
            ++pos;
        }
    }
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const unsigned data = static_cast<unsigned>(rng.next_below(256));
        std::vector<unsigned> parity(p, 0);
        for (unsigned b = 0; b < p; ++b) {
            unsigned acc = 0;
            for (unsigned i = 0; i < data_bits; ++i) {
                if ((position[i] >> b) & 1) acc ^= (data >> i) & 1;
            }
            parity[b] = acc;
        }
        const unsigned flip = static_cast<unsigned>(rng.next_below(data_bits));
        std::vector<std::uint64_t> ins(net.inputs().size(), 0);
        for (std::size_t k = 0; k < net.inputs().size(); ++k) {
            const std::string& nm = net.node(net.inputs()[k]).name;
            unsigned bit = 0;
            if (nm[0] == 'd') {
                const unsigned i = static_cast<unsigned>(std::stoul(nm.substr(1)));
                bit = ((data >> i) & 1) ^ (i == flip ? 1 : 0);
            } else {
                const unsigned i = static_cast<unsigned>(std::stoul(nm.substr(1)));
                bit = parity[i];
            }
            ins[k] = bit ? ~std::uint64_t{0} : 0;
        }
        const auto v = simulate_block(net, ins);
        for (unsigned i = 0; i < data_bits; ++i) {
            const auto id = net.find_node("c" + std::to_string(i));
            if (!id) continue;
            bool got = false;
            for (const PrimaryOutput& po : net.outputs()) {
                if (po.name == "c" + std::to_string(i)) {
                    got = v[po.driver] & 1;
                }
            }
            EXPECT_EQ(got, ((data >> i) & 1) != 0) << "bit " << i << " trial " << trial;
        }
    }
}

// -------------------------------------------------------------------- ALU

TEST(Circuits, AluAddAndLogicLanes) {
    const unsigned w = 4;
    const Network net = make_alu(w, true);
    Rng rng(9);
    for (int trial = 0; trial < 30; ++trial) {
        const unsigned a = static_cast<unsigned>(rng.next_below(16));
        const unsigned b = static_cast<unsigned>(rng.next_below(16));
        const unsigned op = static_cast<unsigned>(rng.next_below(4));
        const bool cin = rng.next_bool();
        std::vector<std::uint64_t> ins(net.inputs().size(), 0);
        for (std::size_t k = 0; k < net.inputs().size(); ++k) {
            const std::string& nm = net.node(net.inputs()[k]).name;
            bool bit = false;
            if (nm[0] == 'a') bit = (a >> std::stoul(nm.substr(1))) & 1;
            else if (nm[0] == 'b') bit = (b >> std::stoul(nm.substr(1))) & 1;
            else if (nm == "cin") bit = cin;
            else if (nm == "op0") bit = op & 1;
            else if (nm == "op1") bit = (op >> 1) & 1;
            ins[k] = bit ? ~std::uint64_t{0} : 0;
        }
        const auto v = simulate_block(net, ins);
        unsigned want = 0;
        // op1=0 -> arithmetic (op0: 0 add, 1 subtract via b^1, cin^1);
        // op1=1 -> logic (op0: 0 AND, 1 OR).
        switch (op) {
            case 0: want = (a + b + (cin ? 1 : 0)) & 0xF; break;
            case 1: want = (a + (~b & 0xF) + (cin ? 0 : 1)) & 0xF; break;
            case 2: want = a & b; break;
            case 3: want = a | b; break;
        }
        unsigned got = 0, got_xor = 0;
        for (const PrimaryOutput& po : net.outputs()) {
            if (po.name[0] == 'r') {
                const unsigned i = static_cast<unsigned>(std::stoul(po.name.substr(1)));
                if (v[po.driver] & 1) got |= 1u << i;
            }
            if (po.name[0] == 'x' && po.name != "xpar") {
                const unsigned i = static_cast<unsigned>(std::stoul(po.name.substr(1)));
                if (v[po.driver] & 1) got_xor |= 1u << i;
            }
        }
        EXPECT_EQ(got, want) << "a=" << a << " b=" << b << " op=" << op << " cin=" << cin;
        EXPECT_EQ(got_xor, a ^ b);
        // Zero flag.
        for (const PrimaryOutput& po : net.outputs()) {
            if (po.name == "zero") {
                EXPECT_EQ((v[po.driver] & 1) != 0, got == 0);
            }
        }
    }
}

TEST(Circuits, MultiplierExhaustive4x4) {
    const Network net = make_multiplier(4);
    ASSERT_EQ(net.inputs().size(), 8u);
    for (unsigned av = 0; av < 16; ++av) {
        for (unsigned bv = 0; bv < 16; ++bv) {
            std::vector<std::uint64_t> ins(net.inputs().size(), 0);
            for (std::size_t k = 0; k < net.inputs().size(); ++k) {
                const std::string& nm = net.node(net.inputs()[k]).name;
                const unsigned i = static_cast<unsigned>(std::stoul(nm.substr(1)));
                const bool bit = nm[0] == 'a' ? ((av >> i) & 1) : ((bv >> i) & 1);
                ins[k] = bit ? ~std::uint64_t{0} : 0;
            }
            const auto v = simulate_block(net, ins);
            unsigned got = 0;
            for (const PrimaryOutput& po : net.outputs()) {
                const unsigned i = static_cast<unsigned>(std::stoul(po.name.substr(1)));
                if (v[po.driver] & 1) got |= 1u << i;
            }
            ASSERT_EQ(got, av * bv) << av << "*" << bv;
        }
    }
}

TEST(Circuits, MultiplierScalesDeep) {
    const Network net = make_multiplier(8);
    EXPECT_GT(net.logic_node_count(), 300u);
    EXPECT_GT(net.depth(), 15u);  // the C6288-like long carry chains
    net.check();
}

// ------------------------------------------------------------- generators

TEST(Circuits, ControlLogicDeterministicAndSized) {
    const Network a = make_control_logic(20, 10, 150, 42, "t");
    const Network b = make_control_logic(20, 10, 150, 42, "t");
    EXPECT_EQ(a.node_count(), b.node_count());
    EXPECT_TRUE(equivalent_random(a, b, 4, 1));
    EXPECT_EQ(a.outputs().size(), 10u);
    EXPECT_GT(a.logic_node_count(), 50u);
    const Network c = make_control_logic(20, 10, 150, 43, "t");
    EXPECT_FALSE(equivalent_random(a, c, 4, 1));  // seed changes function
}

TEST(Circuits, PlaShape) {
    const Network pla = make_pla(16, 8, 40, 7, "p");
    EXPECT_EQ(pla.inputs().size(), 16u);
    EXPECT_EQ(pla.outputs().size(), 8u);
    pla.check();
    EXPECT_GT(pla.depth(), 1u);
    // Two-level-ish: depth stays modest (AND tree + OR tree of log depth).
    EXPECT_LT(pla.depth(), 20u);
}

TEST(Circuits, PaperSuiteCompleteAndScaled) {
    const auto suite = paper_suite(0.2);
    ASSERT_EQ(suite.size(), 15u);
    for (const Benchmark& b : suite) {
        EXPECT_FALSE(b.name.empty());
        EXPECT_GT(b.network.logic_node_count(), 0u) << b.name;
        EXPECT_GT(b.network.outputs().size(), 0u) << b.name;
        b.network.check();
    }
    // Scale changes sizes.
    const auto big = paper_suite(1.0);
    std::size_t total_small = 0, total_big = 0;
    for (const auto& b : suite) total_small += b.network.logic_node_count();
    for (const auto& b : big) total_big += b.network.logic_node_count();
    EXPECT_GT(total_big, total_small * 2);
}

TEST(Circuits, Table2NamesAreInSuite) {
    const auto suite = paper_suite(0.2);
    for (const std::string& name : table2_names()) {
        const auto it = std::find_if(suite.begin(), suite.end(),
                                     [&](const Benchmark& b) { return b.name == name; });
        EXPECT_NE(it, suite.end()) << name;
    }
}

}  // namespace
}  // namespace lily
