#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "lily/fanout_opt.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

/// One signal driving `n` XOR sinks.
Network hub_circuit(unsigned n) {
    Network net("hub");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId hub = net.make_and2(a, b);
    for (unsigned i = 0; i < n; ++i) {
        const NodeId x = net.add_input("x" + std::to_string(i));
        net.add_output("o" + std::to_string(i), net.make_xor2(hub, x));
    }
    return net;
}

struct Mapped {
    Library lib = load_msu_big();
    Network net;
    MappedNetlist netlist;
    std::vector<Point> positions;
};

Mapped map_circuit(Network net) {
    Mapped out;
    out.net = std::move(net);
    const DecomposeResult sub = decompose(out.net);
    const LilyResult res = LilyMapper(out.lib).map(sub.graph);
    out.netlist = res.netlist;
    out.positions = res.instance_positions;
    return out;
}

std::size_t max_sinks(const MappedNetlist& m) {
    std::unordered_map<SubjectId, std::size_t> count;
    for (const GateInstance& g : m.gates) {
        for (const SubjectId in : g.inputs) ++count[in];
    }
    std::size_t worst = 0;
    for (const auto& [sig, c] : count) worst = std::max(worst, c);
    return worst;
}

TEST(FanoutOpt, EnforcesLimitAndPreservesFunction) {
    Mapped m = map_circuit(hub_circuit(40));
    ASSERT_GT(max_sinks(m.netlist), 4u);
    MappedNetlist optimized = m.netlist;
    std::vector<Point> pos = m.positions;
    FanoutOptOptions opts;
    opts.max_fanout = 4;
    const FanoutOptResult res = optimize_fanout(optimized, m.lib, &pos, opts);
    EXPECT_GT(res.buffers_added, 0u);
    EXPECT_LE(max_sinks(optimized), 4u);
    EXPECT_EQ(pos.size(), optimized.gates.size());
    optimized.check(m.lib);
    EXPECT_TRUE(equivalent_random(m.net, optimized.to_network(m.lib), 8, 55));
}

TEST(FanoutOpt, NoChangeBelowLimit) {
    Mapped m = map_circuit(hub_circuit(3));
    MappedNetlist optimized = m.netlist;
    std::vector<Point> pos = m.positions;
    FanoutOptOptions opts;
    opts.max_fanout = 16;
    const FanoutOptResult res = optimize_fanout(optimized, m.lib, &pos, opts);
    EXPECT_EQ(res.buffers_added, 0u);
    EXPECT_EQ(optimized.gates.size(), m.netlist.gates.size());
}

TEST(FanoutOpt, HandlesPrimaryInputNets) {
    // A PI fanning out to many sinks gets buffered at the front.
    Network net("pi_hub");
    const NodeId a = net.add_input("a");
    for (unsigned i = 0; i < 20; ++i) {
        const NodeId x = net.add_input("x" + std::to_string(i));
        net.add_output("o" + std::to_string(i), net.make_and2(a, x));
    }
    Mapped m = map_circuit(std::move(net));
    MappedNetlist optimized = m.netlist;
    std::vector<Point> pos = m.positions;
    FanoutOptOptions opts;
    opts.max_fanout = 4;
    optimize_fanout(optimized, m.lib, &pos, opts);
    EXPECT_LE(max_sinks(optimized), 4u);
    EXPECT_TRUE(equivalent_random(m.net, optimized.to_network(m.lib), 8, 66));
}

TEST(FanoutOpt, WorksWithoutPositions) {
    Mapped m = map_circuit(hub_circuit(30));
    MappedNetlist optimized = m.netlist;
    FanoutOptOptions opts;
    opts.max_fanout = 5;
    optimize_fanout(optimized, m.lib, nullptr, opts);
    EXPECT_LE(max_sinks(optimized), 5u);
    EXPECT_TRUE(equivalent_random(m.net, optimized.to_network(m.lib), 8, 77));
}

TEST(FanoutOpt, DoubleInverterFallback) {
    // A library without identity gates must fall back to inverter pairs.
    Library lib = read_genlib(R"(
GATE inv 1.0 O=!a;
PIN * INV 0.1 1.0 0.4 2.0 0.3 1.6
GATE nd2 2.0 O=!(a*b);
PIN * INV 0.1 1.0 0.5 2.6 0.45 2.2
)");
    lib.validate();
    Network net = hub_circuit(24);
    const DecomposeResult sub = decompose(net);
    const MapResult res = BaseMapper(lib).map(sub.graph);
    MappedNetlist optimized = res.netlist;
    FanoutOptOptions opts;
    opts.max_fanout = 4;
    const FanoutOptResult r = optimize_fanout(optimized, lib, nullptr, opts);
    EXPECT_GT(r.buffers_added, 0u);
    EXPECT_EQ(r.buffers_added % 2, 0u);  // pairs
    EXPECT_LE(max_sinks(optimized), 4u);
    EXPECT_TRUE(equivalent_random(net, optimized.to_network(lib), 8, 88));
}

TEST(FanoutOpt, RejectsBadArguments) {
    Mapped m = map_circuit(hub_circuit(8));
    MappedNetlist copy = m.netlist;
    FanoutOptOptions bad;
    bad.max_fanout = 1;
    EXPECT_THROW(optimize_fanout(copy, m.lib, nullptr, bad), std::invalid_argument);
    std::vector<Point> wrong_size(copy.gates.size() + 3);
    FanoutOptOptions ok;
    EXPECT_THROW(optimize_fanout(copy, m.lib, &wrong_size, ok), std::invalid_argument);
}

TEST(FanoutOpt, SuiteCircuitsStayEquivalent) {
    const Library lib = load_msu_big();
    for (const Benchmark& b : paper_suite(0.25)) {
        if (b.network.logic_node_count() > 300) continue;
        const DecomposeResult sub = decompose(b.network);
        const LilyResult res = LilyMapper(lib).map(sub.graph);
        MappedNetlist optimized = res.netlist;
        std::vector<Point> pos = res.instance_positions;
        FanoutOptOptions opts;
        opts.max_fanout = 6;
        optimize_fanout(optimized, lib, &pos, opts);
        EXPECT_LE(max_sinks(optimized), 6u) << b.name;
        EXPECT_TRUE(equivalent_random(b.network, optimized.to_network(lib), 4, 99)) << b.name;
    }
}

}  // namespace
}  // namespace lily
