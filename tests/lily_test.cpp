#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

struct LilyCase {
    MapObjective objective;
    PositionUpdate update;
    WireModel wire;
};

class LilyParam : public ::testing::TestWithParam<LilyCase> {};

TEST_P(LilyParam, MapsBenchmarksEquivalent) {
    const Library lib = load_msu_big();
    LilyMapper mapper(lib);
    LilyOptions opts;
    opts.objective = GetParam().objective;
    opts.update = GetParam().update;
    opts.wire_model = GetParam().wire;
    for (const char* name : {"b9", "misex1", "C880"}) {
        const auto suite = paper_suite(0.25);
        const auto it = std::find_if(suite.begin(), suite.end(),
                                     [&](const Benchmark& b) { return b.name == name; });
        ASSERT_NE(it, suite.end());
        const Network& net = it->network;
        const DecomposeResult r = decompose(net);
        const LilyResult res = mapper.map(r.graph, opts);
        res.netlist.check(lib);
        EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 17)) << name;
        EXPECT_EQ(res.instance_positions.size(), res.netlist.gate_count());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LilyParam,
    ::testing::Values(
        LilyCase{MapObjective::Area, PositionUpdate::CMofFans, WireModel::SteinerHpwl},
        LilyCase{MapObjective::Area, PositionUpdate::CMofMerged, WireModel::SteinerHpwl},
        LilyCase{MapObjective::Area, PositionUpdate::CMofFans, WireModel::SpanningTree},
        LilyCase{MapObjective::Delay, PositionUpdate::CMofFans, WireModel::SteinerHpwl},
        LilyCase{MapObjective::Delay, PositionUpdate::CMofMerged, WireModel::SpanningTree}),
    [](const ::testing::TestParamInfo<LilyCase>& info) {
        std::string s = info.param.objective == MapObjective::Area ? "Area" : "Delay";
        s += info.param.update == PositionUpdate::CMofFans ? "Fans" : "Merged";
        s += info.param.wire == WireModel::SteinerHpwl ? "Hpwl" : "Mst";
        return s;
    });

Network small_circuit() {
    return make_priority_controller(8);
}

TEST(Lily, LifeCycleEndsInHawksAndDoves) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    const LilyResult res = LilyMapper(lib).map(r.graph);
    // Every subject gate node reachable from a PO is Hawk or Dove; inputs
    // stay Egg (they are never "processed").
    std::vector<bool> live(r.graph.size(), false);
    std::vector<SubjectId> stack;
    for (const SubjectOutput& po : r.graph.outputs()) {
        stack.push_back(po.driver);
        live[po.driver] = true;
    }
    while (!stack.empty()) {
        const SubjectId v = stack.back();
        stack.pop_back();
        const SubjectNode& n = r.graph.node(v);
        for (unsigned k = 0; k < n.fanin_count(); ++k) {
            if (!live[n.fanin(k)]) {
                live[n.fanin(k)] = true;
                stack.push_back(n.fanin(k));
            }
        }
    }
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        if (!live[v] || r.graph.node(v).kind == SubjectKind::Input) continue;
        EXPECT_TRUE(res.final_state[v] == LifeState::Hawk ||
                    res.final_state[v] == LifeState::Dove)
            << v;
    }
    // Every emitted instance's driver is a hawk.
    for (const GateInstance& inst : res.netlist.gates) {
        EXPECT_EQ(res.final_state[inst.driver], LifeState::Hawk);
    }
}

TEST(Lily, ConeOrderIsPermutation) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    const LilyResult res = LilyMapper(lib).map(r.graph);
    auto order = res.cone_order;
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Lily, ZeroWireWeightMatchesBaselineArea) {
    // With the wire term disabled, Lily's area DP reduces to the baseline
    // cone-mode DP, so total area must match (ties may pick different but
    // equal-area gates).
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    LilyOptions lily_opts;
    lily_opts.wire_weight = 0.0;
    const LilyResult lres = LilyMapper(lib).map(r.graph, lily_opts);
    const MapResult bres = BaseMapper(lib).map(r.graph);
    EXPECT_NEAR(lres.total_area, bres.total_area, 1e-6);
}

TEST(Lily, WireAwareMappingReducesEstimatedWire) {
    // Charging for wire must not increase Lily's own wire estimate.
    const Library lib = load_msu_big();
    const Network net = make_control_logic(16, 8, 120, 0x77, "wtest");
    const DecomposeResult r = decompose(net);
    LilyOptions no_wire;
    no_wire.wire_weight = 0.0;
    LilyOptions with_wire;
    with_wire.wire_weight = 2.0;
    const LilyResult r0 = LilyMapper(lib).map(r.graph, no_wire);
    const LilyResult r1 = LilyMapper(lib).map(r.graph, with_wire);
    EXPECT_LE(r1.estimated_wirelength, r0.estimated_wirelength * 1.02);
}

TEST(Lily, InstancePositionsInsideRegion) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    const LilyResult res = LilyMapper(lib).map(r.graph);
    // mapPositions stay within (a small margin of) the placement region.
    Rect grown = res.inchoate_placement.region;
    const double margin = grown.half_perimeter() * 0.25;
    grown.ll.x -= margin;
    grown.ll.y -= margin;
    grown.ur.x += margin;
    grown.ur.y += margin;
    for (const Point& p : res.instance_positions) EXPECT_TRUE(grown.contains(p));
}

TEST(Lily, ExternalPadPositionsRespected) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    const SubjectPlacementView view = make_placement_view(r.graph);
    const Rect region = make_region(view.netlist.total_cell_area());
    const auto pads = uniform_pad_ring(view.netlist.pad_positions.size(), region);
    const LilyResult res = LilyMapper(lib).map(r.graph, {}, pads);
    ASSERT_EQ(res.pad_positions.size(), pads.size());
    for (std::size_t i = 0; i < pads.size(); ++i) {
        EXPECT_EQ(res.pad_positions[i], pads[i]);
    }
    EXPECT_THROW(LilyMapper(lib).map(r.graph, {}, std::vector<Point>{{0, 0}}),
                 std::logic_error);
}

TEST(Lily, PeriodicReplacementRunsAndStaysEquivalent) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    LilyOptions opts;
    opts.replace_every_n_cones = 2;
    const LilyResult res = LilyMapper(lib).map(r.graph, opts);
    EXPECT_GT(res.replacements, 0u);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 23));
}

TEST(Lily, ConeOrderingToggleBothEquivalent) {
    const Library lib = load_msu_big();
    const Network net = make_control_logic(14, 10, 100, 0x55, "ctest");
    const DecomposeResult r = decompose(net);
    LilyOptions ordered;
    ordered.order_cones = true;
    LilyOptions unordered;
    unordered.order_cones = false;
    const LilyResult a = LilyMapper(lib).map(r.graph, ordered);
    const LilyResult b = LilyMapper(lib).map(r.graph, unordered);
    EXPECT_TRUE(equivalent_random(net, a.netlist.to_network(lib), 8, 29));
    EXPECT_TRUE(equivalent_random(net, b.netlist.to_network(lib), 8, 29));
}

TEST(Lily, DelayModeArrivalPositiveAndConsistent) {
    const Library lib = load_msu_big();
    const Network net = make_alu(6, false);
    const DecomposeResult r = decompose(net);
    LilyOptions opts;
    opts.objective = MapObjective::Delay;
    const LilyResult res = LilyMapper(lib).map(r.graph, opts);
    EXPECT_GT(res.worst_arrival, 0.0);
    EXPECT_LT(res.worst_arrival, 1e4);
    // Block arrival consistency: for every hawk, the stored output arrival
    // must be >= every block arrival (R*C >= 0).
    for (const GateInstance& inst : res.netlist.gates) {
        const LilyNodeSolution& s = res.solution[inst.driver];
        for (const RiseFallPair& b : s.block) {
            // out = max_i(b_i + R_i * C_L) with R_i, C_L >= 0.
            EXPECT_GE(s.worst_arrival() + 1e-9, b.worst());
        }
    }
}

TEST(Lily, DeterministicAcrossRuns) {
    const Library lib = load_msu_big();
    const Network net = small_circuit();
    const DecomposeResult r = decompose(net);
    const LilyResult a = LilyMapper(lib).map(r.graph);
    const LilyResult b = LilyMapper(lib).map(r.graph);
    ASSERT_EQ(a.netlist.gate_count(), b.netlist.gate_count());
    for (std::size_t i = 0; i < a.netlist.gates.size(); ++i) {
        EXPECT_EQ(a.netlist.gates[i].gate, b.netlist.gates[i].gate);
        EXPECT_EQ(a.netlist.gates[i].driver, b.netlist.gates[i].driver);
    }
    EXPECT_DOUBLE_EQ(a.estimated_wirelength, b.estimated_wirelength);
}

}  // namespace
}  // namespace lily
