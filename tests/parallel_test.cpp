// Determinism and correctness of the parallel engine: the thread pool
// primitives, the deterministic reductions, the CG solver, the pruned
// matcher, and — the end-to-end guarantee — a full Lily flow that must be
// bit-identical with 1 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "match/matcher.hpp"
#include "subject/decompose.hpp"
#include "util/budget.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/sparse.hpp"

namespace lily {
namespace {

/// Run `body` under a given global pool size, restoring the default after.
template <typename Body>
void with_pool_size(std::size_t n, Body&& body) {
    ThreadPool::global().resize(n);
    body();
    ThreadPool::global().resize(0);
}

TEST(ThreadPool, EveryChunkRunsExactlyOnce) {
    with_pool_size(8, [] {
        std::vector<std::atomic<int>> hits(1000);
        parallel_for(
            0, hits.size(),
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
            },
            /*grain=*/7);
        for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    });
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
    with_pool_size(4, [] {
        EXPECT_THROW(parallel_for(
                         0, 100,
                         [&](std::size_t begin, std::size_t) {
                             if (begin == 0) throw std::runtime_error("boom");
                         },
                         /*grain=*/10),
                     std::runtime_error);
    });
}

TEST(ThreadPool, NestedRegionsRunInline) {
    with_pool_size(4, [] {
        std::atomic<int> inner_total{0};
        parallel_for(
            0, 8,
            [&](std::size_t, std::size_t) {
                // A nested region must execute inline on this worker (no
                // deadlock) and still cover its whole range.
                int local = 0;
                parallel_for(
                    0, 100, [&](std::size_t b, std::size_t e) { local += static_cast<int>(e - b); },
                    /*grain=*/9);
                inner_total.fetch_add(local);
            },
            /*grain=*/1);
        EXPECT_EQ(inner_total.load(), 8 * 100);
    });
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossPoolSizes) {
    // Values chosen so summation order matters in double precision.
    std::vector<double> v(100'000);
    double x = 1e-9;
    for (std::size_t i = 0; i < v.size(); ++i) {
        x = x * 1.0000001 + 1e-7;
        v[i] = (i % 3 == 0 ? 1e12 : 1.0) * x;
    }
    auto sum_with = [&](std::size_t pool) {
        double out = 0.0;
        with_pool_size(pool, [&] {
            out = parallel_reduce(
                std::size_t{0}, v.size(), 0.0,
                [&](std::size_t begin, std::size_t end) {
                    double s = 0.0;
                    for (std::size_t i = begin; i < end; ++i) s += v[i];
                    return s;
                },
                [](double acc, double part) { return acc + part; });
        });
        return out;
    };
    const double s1 = sum_with(1);
    const double s2 = sum_with(2);
    const double s8 = sum_with(8);
    // Bit-identical, not merely close.
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s8);
}

TEST(ParallelSparse, CgSolveBitIdenticalAcrossPoolSizes) {
    // A 1-D chain Laplacian with anchors at both ends: SPD, nontrivial.
    const std::size_t n = 5000;
    SparseMatrix::Builder b(n);
    for (std::size_t i = 0; i + 1 < n; ++i) b.add_spring(i, i + 1, 1.0 + 0.001 * (i % 7));
    b.add_anchor(0, 2.0);
    b.add_anchor(n - 1, 3.0);
    const SparseMatrix a = std::move(b).build();
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = std::sin(0.01 * static_cast<double>(i));

    auto solve_with = [&](std::size_t pool) {
        std::vector<double> x(n, 0.0);
        with_pool_size(pool, [&] { conjugate_gradient(a, rhs, x, 1e-10, 2000); });
        return x;
    };
    const std::vector<double> x1 = solve_with(1);
    const std::vector<double> x8 = solve_with(8);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(x1[i], x8[i]) << "component " << i << " differs across pool sizes";
    }
}

TEST(ParallelSparse, SetDiagonalMatchesRebuild) {
    const std::size_t n = 64;
    SparseMatrix::Builder b1(n);
    SparseMatrix::Builder b2(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        b1.add_spring(i, i + 1, 2.0);
        b2.add_spring(i, i + 1, 2.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        b1.add_anchor(i, 0.0);  // reserve, then overwrite in place
        b2.add_anchor(i, 0.5 * static_cast<double>(i) + 1.0);
    }
    SparseMatrix incremental = std::move(b1).build();
    const SparseMatrix rebuilt = std::move(b2).build();
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(incremental.has_diagonal_entry(i));
        incremental.set_diagonal(i, incremental.diagonal(i) +
                                        (0.5 * static_cast<double>(i) + 1.0));
    }
    std::vector<double> x(n), y_inc(n), y_reb(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(0.1 * static_cast<double>(i));
    incremental.multiply(x, y_inc);
    rebuilt.multiply(x, y_reb);
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y_inc[i], y_reb[i]);
}

// The regression this guards: std::sort is unstable, so on large triplet
// sets the anchor triplet does not necessarily sum *last* into its
// diagonal — a naive "built diagonal + w" update then rounds differently
// than a rebuild. set_anchor records the slot's exact fold position, so
// the refreshed matrix must be bit-identical (EXPECT_EQ, not NEAR) to a
// from-scratch build with the same weights, at any problem size.
TEST(ParallelSparse, SetAnchorBitIdenticalToRebuild) {
    for (const std::size_t n : {8UL, 300UL, 5000UL}) {
        Rng rng(0x5EED0000 + n);
        SparseMatrix::Builder b1(n);
        SparseMatrix::Builder b2(n);
        // Random springs create many duplicate diagonal contributions with
        // irrational-ish weights, so any fold-order change is visible.
        const std::size_t n_springs = 6 * n;
        for (std::size_t s = 0; s < n_springs; ++s) {
            const std::size_t i = static_cast<std::size_t>(rng.next_below(n));
            const std::size_t j = static_cast<std::size_t>(rng.next_below(n));
            if (i == j) continue;
            const double w = 0.1 + rng.next_double();
            b1.add_spring(i, j, w);
            b2.add_spring(i, j, w);
        }
        std::vector<double> weights(n);
        for (std::size_t i = 0; i < n; ++i) weights[i] = 1e-3 + rng.next_double();
        for (std::size_t i = 0; i < n; ++i) {
            b1.add_anchor_slot(i);
            b2.add_anchor(i, weights[i]);
        }
        SparseMatrix incremental = std::move(b1).build();
        const SparseMatrix rebuilt = std::move(b2).build();
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(incremental.has_anchor_slot(i));
            incremental.set_anchor(i, weights[i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(incremental.diagonal(i), rebuilt.diagonal(i)) << "n=" << n << " i=" << i;
        }
        std::vector<double> x(n), y_inc(n), y_reb(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(0.1 * static_cast<double>(i));
        incremental.multiply(x, y_inc);
        rebuilt.multiply(x, y_reb);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y_inc[i], y_reb[i]);
    }
}

TEST(StageBudgetThreaded, ConcurrentTicksNeverLoseCounts) {
    StageBudget budget = StageBudget::iterations(1'000'000'000);  // never exhausts here
    constexpr int kThreads = 8;
    constexpr int kTicks = 10'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&budget] {
            for (int i = 0; i < kTicks; ++i) budget.tick();
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(budget.ticks_used(), static_cast<std::size_t>(kThreads) * kTicks);
}

TEST(StageBudgetThreaded, ExhaustionSeenByAllPollers) {
    StageBudget budget = StageBudget::iterations(100);
    with_pool_size(8, [&] {
        std::atomic<int> saw_exhausted{0};
        parallel_for(
            0, 64,
            [&](std::size_t, std::size_t) {
                for (int i = 0; i < 10; ++i) budget.tick();
                if (budget.exhausted()) saw_exhausted.fetch_add(1);
            },
            /*grain=*/1);
        EXPECT_TRUE(budget.exhausted());
        EXPECT_GT(saw_exhausted.load(), 0);
    });
}

// ------------------------------------------------------------- matcher

TEST(MatcherPruning, PrunedEqualsReferenceOnGeneratedGraphs) {
    const Library lib = load_msu_big();
    const Matcher matcher(lib);
    // A spread of shapes: control logic (random-ish cones) and a multiplier
    // (deep reconvergent arrays).
    std::vector<Network> nets;
    for (unsigned seed : {1u, 7u, 42u}) {
        nets.push_back(make_control_logic(12, 6, 120, seed, "prune"));
    }
    nets.push_back(make_multiplier(6));
    MatchScratch scratch;
    for (const Network& net : nets) {
        const DecomposeResult sub = decompose(net);
        for (SubjectId v = 0; v < sub.graph.size(); ++v) {
            for (bool base_only : {false, true}) {
                const std::vector<Match> pruned =
                    matcher.matches_at(sub.graph, v, scratch, base_only);
                const std::vector<Match> reference =
                    matcher.matches_at_reference(sub.graph, v, base_only);
                ASSERT_EQ(pruned.size(), reference.size())
                    << "node " << v << " base_only=" << base_only;
                for (std::size_t i = 0; i < pruned.size(); ++i) {
                    EXPECT_EQ(pruned[i].gate, reference[i].gate);
                    EXPECT_EQ(pruned[i].pattern_index, reference[i].pattern_index);
                    EXPECT_EQ(pruned[i].inputs, reference[i].inputs);
                    EXPECT_EQ(pruned[i].covered, reference[i].covered);
                }
            }
        }
    }
}

TEST(MatcherPruning, ScratchReuseMatchesFreshScratch) {
    const Library lib = load_msu_big();
    const Matcher matcher(lib);
    const DecomposeResult sub = decompose(make_control_logic(8, 4, 60, 3, "scratch"));
    MatchScratch reused;
    for (SubjectId v = 0; v < sub.graph.size(); ++v) {
        const std::vector<Match> with_reuse = matcher.matches_at(sub.graph, v, reused);
        const std::vector<Match> fresh = matcher.matches_at(sub.graph, v);
        ASSERT_EQ(with_reuse.size(), fresh.size()) << "node " << v;
        for (std::size_t i = 0; i < with_reuse.size(); ++i) {
            EXPECT_EQ(with_reuse[i].covered, fresh[i].covered);
            EXPECT_EQ(with_reuse[i].inputs, fresh[i].inputs);
        }
    }
}

// ------------------------------------------------- end-to-end determinism

void expect_flows_bit_identical(MapObjective objective) {
    const Library lib = load_msu_big();
    const Network net = make_control_logic(24, 12, 300, 0xBEEF, "det");

    auto run_with = [&](std::size_t threads) {
        FlowOptions opts;
        opts.objective = objective;
        opts.threads = threads;
        return run_lily_flow(net, lib, opts);
    };
    const FlowResult r1 = run_with(1);
    const FlowResult r8 = run_with(8);

    EXPECT_EQ(r1.metrics.gate_count, r8.metrics.gate_count);
    EXPECT_EQ(r1.metrics.cell_area, r8.metrics.cell_area);
    EXPECT_EQ(r1.metrics.chip_area, r8.metrics.chip_area);
    EXPECT_EQ(r1.metrics.wirelength, r8.metrics.wirelength);
    EXPECT_EQ(r1.metrics.critical_delay, r8.metrics.critical_delay);
    EXPECT_EQ(r1.metrics.max_congestion, r8.metrics.max_congestion);
    ASSERT_EQ(r1.final_positions.size(), r8.final_positions.size());
    for (std::size_t i = 0; i < r1.final_positions.size(); ++i) {
        ASSERT_EQ(r1.final_positions[i].x, r8.final_positions[i].x) << "instance " << i;
        ASSERT_EQ(r1.final_positions[i].y, r8.final_positions[i].y) << "instance " << i;
    }
    ASSERT_EQ(r1.pad_positions.size(), r8.pad_positions.size());
    for (std::size_t i = 0; i < r1.pad_positions.size(); ++i) {
        ASSERT_EQ(r1.pad_positions[i].x, r8.pad_positions[i].x);
        ASSERT_EQ(r1.pad_positions[i].y, r8.pad_positions[i].y);
    }
    // Restore the default pool for the remaining tests.
    ThreadPool::global().resize(0);
}

TEST(FlowDeterminism, AreaObjectiveBitIdentical1vs8Threads) {
    expect_flows_bit_identical(MapObjective::Area);
}

TEST(FlowDeterminism, DelayObjectiveBitIdentical1vs8Threads) {
    expect_flows_bit_identical(MapObjective::Delay);
}

TEST(FlowDeterminism, BaselineFlowBitIdentical1vs8Threads) {
    const Library lib = load_msu_big();
    const Network net = make_control_logic(16, 8, 200, 0xCAFE, "det-base");
    FlowOptions o1;
    o1.threads = 1;
    FlowOptions o8;
    o8.threads = 8;
    const FlowResult r1 = run_baseline_flow(net, lib, o1);
    const FlowResult r8 = run_baseline_flow(net, lib, o8);
    EXPECT_EQ(r1.metrics.cell_area, r8.metrics.cell_area);
    EXPECT_EQ(r1.metrics.wirelength, r8.metrics.wirelength);
    EXPECT_EQ(r1.metrics.critical_delay, r8.metrics.critical_delay);
    ASSERT_EQ(r1.final_positions.size(), r8.final_positions.size());
    for (std::size_t i = 0; i < r1.final_positions.size(); ++i) {
        ASSERT_EQ(r1.final_positions[i].x, r8.final_positions[i].x);
        ASSERT_EQ(r1.final_positions[i].y, r8.final_positions[i].y);
    }
    ThreadPool::global().resize(0);
}

}  // namespace
}  // namespace lily
