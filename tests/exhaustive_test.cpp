// Exhaustive correctness sweep: every Boolean function of 3 variables is
// built as a network, decomposed, mapped by both mappers, and checked
// bit-exactly against its truth table. This covers every NPN class the
// matcher and the decomposition can encounter at this arity.
#include <gtest/gtest.h>

#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

/// Network computing the 3-input function with the given truth table.
Network function_network(unsigned tt) {
    Network net("f" + std::to_string(tt));
    std::vector<NodeId> ins;
    for (unsigned i = 0; i < 3; ++i) ins.push_back(net.add_input("x" + std::to_string(i)));
    Sop sop;
    for (unsigned m = 0; m < 8; ++m) {
        if ((tt >> m) & 1) sop.cubes.push_back({0b111, m});
    }
    net.add_output("f", net.add_node("f", ins, std::move(sop)));
    return net;
}

/// Truth table of the mapped network's single output, by exhaustive
/// simulation.
unsigned simulate_tt(const Network& net) {
    std::array<std::uint64_t, 3> ins{};
    for (unsigned m = 0; m < 8; ++m) {
        for (unsigned i = 0; i < 3; ++i) {
            if ((m >> i) & 1) ins[i] |= std::uint64_t{1} << m;
        }
    }
    const auto v = simulate_block(net, ins);
    return static_cast<unsigned>(v[net.outputs()[0].driver] & 0xFF);
}

class AllFunctions : public ::testing::TestWithParam<int> {};

TEST_P(AllFunctions, MapBitExact) {
    // Each shard covers 32 functions; constants are skipped (the mapper's
    // scope excludes them, as does the paper's).
    const Library big = load_msu_big();
    const Library tiny = load_msu_tiny();
    const unsigned lo = static_cast<unsigned>(GetParam()) * 32;
    for (unsigned tt = lo; tt < lo + 32; ++tt) {
        if (tt == 0x00 || tt == 0xFF) continue;
        const Network net = function_network(tt);
        ASSERT_EQ(simulate_tt(net), tt);
        const DecomposeResult sub = decompose(net);
        ASSERT_EQ(simulate_tt(sub.graph.to_network()), tt) << "decompose " << tt;

        const MapResult base = BaseMapper(tiny).map(sub.graph);
        EXPECT_EQ(simulate_tt(base.netlist.to_network(tiny)), tt) << "base/tiny " << tt;

        const LilyResult lily = LilyMapper(big).map(sub.graph);
        EXPECT_EQ(simulate_tt(lily.netlist.to_network(big)), tt) << "lily/big " << tt;
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, AllFunctions, ::testing::Range(0, 8));

}  // namespace
}  // namespace lily
