// The formal equivalence engine: SAT core, AIG lowering, SAT-sweeping CEC,
// interface alignment, netlist lint, and the flow's verify stage.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/mapped_checker.hpp"
#include "flow/flow.hpp"
#include "flow/pipeline.hpp"
#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/delta.hpp"
#include "netlist/interface.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "verify/aig.hpp"
#include "verify/cec.hpp"
#include "verify/lint.hpp"
#include "verify/sat.hpp"

namespace lily {
namespace {

class FaultGuard {
public:
    explicit FaultGuard(std::string spec) { set_fault_spec(std::move(spec)); }
    ~FaultGuard() { set_fault_spec(""); }
};

std::vector<std::string> example_circuits() {
    std::vector<std::string> paths;
    const std::string dir = std::string(LILY_SOURCE_DIR) + "/examples/circuits";
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".blif") paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

// ------------------------------------------------------------------- SAT

TEST(Sat, EmptyInstanceIsSat) {
    SatSolver s;
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, SingleUnitClause) {
    SatSolver s;
    const int x = s.new_var();
    s.add_clause({x});
    ASSERT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.model_value(x));
}

TEST(Sat, ContradictingUnitsAreUnsat) {
    SatSolver s;
    const int x = s.new_var();
    s.add_clause({x});
    s.add_clause({-x});
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, UnitPropagationChainNeedsNoDecisions) {
    // x1, and x_i -> x_{i+1}: everything is forced at the root level.
    SatSolver s;
    std::vector<int> v;
    for (int i = 0; i < 12; ++i) v.push_back(s.new_var());
    for (int i = 0; i + 1 < 12; ++i) s.add_clause({-v[i], v[i + 1]});
    s.add_clause({v[0]});
    ASSERT_EQ(s.solve(), SatResult::Sat);
    for (const int x : v) EXPECT_TRUE(s.model_value(x));
    EXPECT_EQ(s.stats().decisions, 0u);
}

TEST(Sat, ConflictLearningProvesSmallUnsat) {
    // (x1|x2)(x1|!x2)(!x1|x3)(!x1|!x3): forcing x1 both ways dead-ends.
    SatSolver s;
    const int x1 = s.new_var();
    const int x2 = s.new_var();
    const int x3 = s.new_var();
    s.add_clause({x1, x2});
    s.add_clause({x1, -x2});
    s.add_clause({-x1, x3});
    s.add_clause({-x1, -x3});
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GE(s.stats().conflicts, 1u);
}

/// 4 pigeons into 3 holes: the classic resolution-hard UNSAT family.
void build_pigeonhole(SatSolver& s, int pigeons, int holes, std::vector<std::vector<int>>& p) {
    p.assign(pigeons, std::vector<int>(holes));
    for (int i = 0; i < pigeons; ++i) {
        for (int j = 0; j < holes; ++j) p[i][j] = s.new_var();
    }
    for (int i = 0; i < pigeons; ++i) s.add_clause(p[i]);
    for (int j = 0; j < holes; ++j) {
        for (int i = 0; i < pigeons; ++i) {
            for (int k = i + 1; k < pigeons; ++k) s.add_clause({-p[i][j], -p[k][j]});
        }
    }
}

TEST(Sat, PigeonholeFourIntoThreeIsUnsat) {
    SatSolver s;
    std::vector<std::vector<int>> p;
    build_pigeonhole(s, 4, 3, p);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GE(s.stats().conflicts, 2u);
}

TEST(Sat, PigeonholeThreeIntoThreeModelIsAMatching) {
    SatSolver s;
    std::vector<std::vector<int>> p;
    build_pigeonhole(s, 3, 3, p);
    ASSERT_EQ(s.solve(), SatResult::Sat);
    // The model must place every pigeon and never share a hole.
    std::array<int, 3> hole_of = {-1, -1, -1};
    for (int i = 0; i < 3; ++i) {
        int placed = 0;
        for (int j = 0; j < 3; ++j) {
            if (s.model_value(p[i][j])) {
                ++placed;
                EXPECT_EQ(hole_of[j], -1) << "hole " << j << " shared";
                hole_of[j] = i;
            }
        }
        EXPECT_GE(placed, 1);
    }
}

TEST(Sat, PigeonholeSixIntoFiveSurvivesManyAnalyzeRounds) {
    // Regression: conflict analysis once leaked a seen_ flag through the
    // literal swapped into the learnt clause's watch slot, which corrupted
    // the trail walk of a *later* analyze on instances with enough
    // conflicts. PH(6,5) drives thousands of analyze rounds.
    SatSolver s;
    std::vector<std::vector<int>> p;
    build_pigeonhole(s, 6, 5, p);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GE(s.stats().learned, 10u);
}

TEST(Sat, RandomThreeSatAgreesWithBruteForce) {
    // 12-variable random 3-SAT at varying densities, cross-checked against
    // exhaustive enumeration. Exercises learning, restarts and phase saving
    // on both satisfiable and unsatisfiable instances.
    Rng rng(0x3A7);
    const int n = 12;
    for (int round = 0; round < 40; ++round) {
        const int n_clauses = 30 + static_cast<int>(rng.next_u64() % 40);
        std::vector<std::array<int, 3>> cnf;
        for (int c = 0; c < n_clauses; ++c) {
            std::array<int, 3> cl;
            for (int k = 0; k < 3; ++k) {
                const int v = 1 + static_cast<int>(rng.next_u64() % n);
                cl[k] = (rng.next_u64() & 1) != 0 ? v : -v;
            }
            cnf.push_back(cl);
        }
        bool brute_sat = false;
        for (std::uint32_t m = 0; m < (1u << n) && !brute_sat; ++m) {
            bool all = true;
            for (const auto& cl : cnf) {
                bool any = false;
                for (const int l : cl) {
                    const bool val = (m >> (std::abs(l) - 1)) & 1;
                    if (l > 0 ? val : !val) any = true;
                }
                if (!any) { all = false; break; }
            }
            brute_sat = all;
        }
        SatSolver s;
        for (int v = 0; v < n; ++v) s.new_var();
        for (const auto& cl : cnf) s.add_clause({cl[0], cl[1], cl[2]});
        const SatResult res = s.solve();
        ASSERT_EQ(res, brute_sat ? SatResult::Sat : SatResult::Unsat) << "round " << round;
        if (res == SatResult::Sat) {
            for (const auto& cl : cnf) {
                bool any = false;
                for (const int l : cl) {
                    if (l > 0 ? s.model_value(l) : !s.model_value(-l)) any = true;
                }
                EXPECT_TRUE(any) << "round " << round << ": model violates a clause";
            }
        }
    }
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
    SatSolver s;
    std::vector<std::vector<int>> p;
    build_pigeonhole(s, 5, 4, p);
    EXPECT_EQ(s.solve(1), SatResult::Unknown);
}

// ------------------------------------------------------------------- AIG

TEST(Aig, TrivialRulesAndStructuralHashing) {
    Aig aig;
    const AigLit x = aig_lit(aig.add_input(), false);
    const AigLit y = aig_lit(aig.add_input(), false);
    EXPECT_EQ(aig.make_and(x, kAigFalse), kAigFalse);
    EXPECT_EQ(aig.make_and(x, kAigTrue), x);
    EXPECT_EQ(aig.make_and(x, x), x);
    EXPECT_EQ(aig.make_and(x, aig_not(x)), kAigFalse);
    const AigLit a1 = aig.make_and(x, y);
    const AigLit a2 = aig.make_and(y, x);  // canonical order: same node
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(aig.and_count(), 1u);
}

TEST(Aig, SimulateXor) {
    Aig aig;
    const AigLit x = aig_lit(aig.add_input(), false);
    const AigLit y = aig_lit(aig.add_input(), false);
    const AigLit z = aig.make_xor(x, y);
    const std::array<std::uint64_t, 2> words = {0b1100u, 0b1010u};
    const std::vector<std::uint64_t> value = aig.simulate(words);
    const std::uint64_t got =
        value[aig_node(z)] ^ (aig_sign(z) ? ~0ULL : 0ULL);
    EXPECT_EQ(got & 0xFu, 0b0110u);
}

/// Property: lowering a network into an AIG preserves its simulation
/// semantics on every example circuit.
TEST(Aig, LowerNetworkMatchesSimulateBlockOnExamples) {
    for (const std::string& path : example_circuits()) {
        SCOPED_TRACE(path);
        const Network net = read_blif_file(path);
        Aig aig;
        std::vector<AigLit> pi_lits(net.inputs().size());
        for (AigLit& l : pi_lits) l = aig_lit(aig.add_input(), false);
        const std::vector<AigLit> lit = lower_network(net, aig, pi_lits);

        Rng rng(0xA16);
        for (int block = 0; block < 4; ++block) {
            std::vector<std::uint64_t> words(net.inputs().size());
            for (std::uint64_t& w : words) w = rng.next_u64();
            const std::vector<std::uint64_t> aig_val = aig.simulate(words);
            const std::vector<std::uint64_t> net_val = simulate_block(net, words);
            for (const PrimaryOutput& po : net.outputs()) {
                const AigLit l = lit[po.driver];
                const std::uint64_t got =
                    aig_val[aig_node(l)] ^ (aig_sign(l) ? ~0ULL : 0ULL);
                EXPECT_EQ(got, net_val[po.driver]) << "PO " << po.name;
            }
        }
    }
}

// ------------------------------------------------- interface alignment

Network two_input_and(const std::string& pi0, const std::string& pi1) {
    Network net("and2");
    const NodeId a = net.add_input(pi0);
    const NodeId b = net.add_input(pi1);
    net.add_output("f", net.make_and2(a, b));
    return net;
}

TEST(AlignInterfaces, PermutedPisAlignByName) {
    const Network a = two_input_and("x", "y");
    const Network b = two_input_and("y", "x");
    const StatusOr<InterfaceAlignment> align = align_interfaces(a, b);
    ASSERT_TRUE(align.is_ok());
    EXPECT_EQ(align.value().pi_of_b[0], 1u);
    EXPECT_EQ(align.value().pi_of_b[1], 0u);
    const StatusOr<bool> eq = equivalent_random_checked(a, b, 4, 7);
    ASSERT_TRUE(eq.is_ok());
    EXPECT_TRUE(eq.value());  // AND commutes
}

TEST(AlignInterfaces, NameSetMismatchIsLoud) {
    const Network a = two_input_and("x", "y");
    const Network b = two_input_and("x", "z");
    const StatusOr<InterfaceAlignment> align = align_interfaces(a, b);
    ASSERT_FALSE(align.is_ok());
    EXPECT_EQ(align.status().code(), StatusCode::InvariantViolation);

    const StatusOr<bool> eq = equivalent_random_checked(a, b, 4, 7);
    EXPECT_FALSE(eq.is_ok());
    // The historical bool API must not silently report "not equivalent".
    EXPECT_THROW(equivalent_random(a, b, 4, 7), std::logic_error);
}

TEST(AlignInterfaces, CountMismatchIsLoud) {
    const Network a = two_input_and("x", "y");
    Network b("bigger");
    const NodeId x = b.add_input("x");
    const NodeId y = b.add_input("y");
    b.add_input("z");
    b.add_output("f", b.make_and2(x, y));
    EXPECT_FALSE(align_interfaces(a, b).is_ok());
}

// ------------------------------------------------------------------- CEC

TEST(Cec, ProvesMappedExamplesEquivalent) {
    const Library lib = load_msu_big();
    for (const std::string& path : example_circuits()) {
        SCOPED_TRACE(path);
        const Network net = read_blif_file(path);
        const MapResult mapped = BaseMapper(lib).map(decompose(net).graph);
        const StatusOr<CecResult> cec =
            check_equivalence(net, mapped.netlist.to_network(lib));
        ASSERT_TRUE(cec.is_ok()) << cec.status().to_string();
        EXPECT_EQ(cec.value().verdict, CecVerdict::Proven);
        EXPECT_FALSE(cec.value().cex.has_value());
    }
}

TEST(Cec, SweepingMergesNodes) {
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/parity8.blif");
    const MapResult mapped = BaseMapper(lib).map(decompose(net).graph);
    const StatusOr<CecResult> cec = check_equivalence(net, mapped.netlist.to_network(lib));
    ASSERT_TRUE(cec.is_ok());
    EXPECT_EQ(cec.value().verdict, CecVerdict::Proven);
    EXPECT_GT(cec.value().stats.merged_nodes, 0u);
    EXPECT_GT(cec.value().stats.sat_unsat, 0u);
}

TEST(Cec, RefutesFlippedGateWithReplayableCounterexample) {
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/full_adder.blif");
    MapResult mapped = BaseMapper(lib).map(decompose(net).graph);
    ASSERT_TRUE(inject_wrong_cover(mapped.netlist, lib));
    const Network impl = mapped.netlist.to_network(lib);

    const StatusOr<CecResult> cec_or = check_equivalence(net, impl);
    ASSERT_TRUE(cec_or.is_ok()) << cec_or.status().to_string();
    const CecResult& cec = cec_or.value();
    ASSERT_EQ(cec.verdict, CecVerdict::Refuted);
    ASSERT_TRUE(cec.cex.has_value());
    ASSERT_FALSE(cec.cex->mismatches.empty());

    // Replay the counterexample ourselves: the engine's diff must hold
    // under an independent simulate_block run on both circuits.
    const InterfaceAlignment align = align_interfaces(net, impl).value();
    std::vector<std::uint64_t> ins_a(net.inputs().size());
    for (std::size_t i = 0; i < ins_a.size(); ++i) {
        ins_a[i] = cec.cex->pi_values[i] ? ~0ULL : 0ULL;
    }
    std::vector<std::uint64_t> ins_b(impl.inputs().size());
    for (std::size_t i = 0; i < ins_b.size(); ++i) ins_b[i] = ins_a[align.pi_of_b[i]];
    const std::vector<std::uint64_t> va = simulate_block(net, ins_a);
    const std::vector<std::uint64_t> vb = simulate_block(impl, ins_b);
    for (const Counterexample::Mismatch& m : cec.cex->mismatches) {
        std::size_t j = 0;
        while (impl.outputs()[j].name != m.po_name) ++j;
        const bool bit_a = (va[net.outputs()[align.po_of_b[j]].driver] & 1) != 0;
        const bool bit_b = (vb[impl.outputs()[j].driver] & 1) != 0;
        EXPECT_EQ(bit_a, m.value_a);
        EXPECT_EQ(bit_b, m.value_b);
        EXPECT_NE(bit_a, bit_b);
    }
}

TEST(Cec, TinyOutputBudgetIsInconclusiveNeverWrong) {
    // Two equivalent but structurally different parity trees: a proof needs
    // real search, so a one-conflict budget cannot finish — and must come
    // back Inconclusive, not Refuted.
    const unsigned n = 10;
    Network chain("chain");
    Network tree("tree");
    std::vector<NodeId> ci, ti;
    for (unsigned i = 0; i < n; ++i) {
        ci.push_back(chain.add_input("x" + std::to_string(i)));
        ti.push_back(tree.add_input("x" + std::to_string(i)));
    }
    NodeId acc = ci[0];
    for (unsigned i = 1; i < n; ++i) acc = chain.make_xor2(acc, ci[i]);
    chain.add_output("p", acc);
    while (ti.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < ti.size(); i += 2) {
            next.push_back(tree.make_xor2(ti[i], ti[i + 1]));
        }
        if (ti.size() % 2 != 0) next.push_back(ti.back());
        ti = next;
    }
    tree.add_output("p", ti[0]);

    CecOptions opts;
    opts.sweep = false;
    opts.output_conflict_budget = 1;
    const StatusOr<CecResult> budgeted = check_equivalence(chain, tree, opts);
    ASSERT_TRUE(budgeted.is_ok());
    EXPECT_EQ(budgeted.value().verdict, CecVerdict::Inconclusive);
    EXPECT_FALSE(budgeted.value().note.empty());

    const StatusOr<CecResult> full = check_equivalence(chain, tree);
    ASSERT_TRUE(full.is_ok());
    EXPECT_EQ(full.value().verdict, CecVerdict::Proven);
}

// ------------------------------------------------------------------ lint

TEST(Lint, CleanExamplesHaveNoFindings) {
    for (const std::string& path : example_circuits()) {
        SCOPED_TRACE(path);
        const CheckReport rep = lint_network(read_blif_file(path));
        EXPECT_TRUE(rep.empty()) << rep.to_string();
    }
}

TEST(Lint, FlagsCombinationalCycle) {
    Network net("cyc");
    const NodeId x = net.add_input("x");
    const NodeId n1 = net.make_and2(x, x);
    const NodeId n2 = net.make_and2(n1, x);
    net.add_output("f", n2);
    net.node(n1).fanins[1] = n2;  // forward edge: n1 -> n2 -> n1
    const CheckReport rep = lint_network(net);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("cycle")) << rep.to_string();
}

TEST(Lint, FlagsSelfLoop) {
    Network net("self");
    const NodeId x = net.add_input("x");
    const NodeId n1 = net.make_and2(x, x);
    net.add_output("f", n1);
    net.node(n1).fanins[0] = n1;
    const CheckReport rep = lint_network(net);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("self-loop")) << rep.to_string();
}

TEST(Lint, FlagsFloatingInputAndDeadCone) {
    Network net("float");
    const NodeId x = net.add_input("x");
    const NodeId y = net.add_input("y");
    net.add_input("unused");
    net.add_output("f", net.make_and2(x, y));
    net.make_or2(x, y);  // drives nothing
    const CheckReport rep = lint_network(net);
    EXPECT_FALSE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("floating input")) << rep.to_string();
    EXPECT_TRUE(rep.mentions("dead cone")) << rep.to_string();
}

TEST(Lint, FlagsConstantMergeableLogic) {
    Network net("const0");
    const NodeId x = net.add_input("x");
    const NodeId inv = net.make_not(x);
    net.add_output("f", net.make_and2(x, inv));  // x & !x == 0
    const CheckReport rep = lint_network(net);
    EXPECT_TRUE(rep.mentions("constant 0")) << rep.to_string();
}

TEST(Lint, FlagsDuplicateOutputName) {
    Network net("dup");
    const NodeId x = net.add_input("x");
    const NodeId n = net.make_and2(x, x);
    net.add_output("f", n);
    net.add_output("f", n);
    const CheckReport rep = lint_network(net);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("declared more than once")) << rep.to_string();
}

TEST(Lint, FlagsDeadFaninAndDeadPoDriver) {
    Network net("deadf");
    const NodeId x = net.add_input("x");
    const NodeId y = net.add_input("y");
    const NodeId a = net.make_and2(x, y);
    const NodeId b = net.make_or2(a, x);
    net.add_output("f", b);
    net.node(a).dead = true;
    const CheckReport rep = lint_network(net);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("reads dead node")) << rep.to_string();
}

// ------------------------------------------------- flow integration

FlowOptions prove_options() {
    FlowOptions opts;
    opts.verify = VerifyLevel::Prove;
    return opts;
}

TEST(FlowVerify, LilyFlowProvesMappedNetlist) {
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/full_adder.blif");
    const StatusOr<FlowResult> out = run_lily_flow_checked(net, lib, prove_options());
    ASSERT_TRUE(out.is_ok()) << out.status().to_string();
    const StageDiagnostics* vd = out.value().diagnostics.find("verify");
    ASSERT_NE(vd, nullptr);
    EXPECT_EQ(vd->state, StageState::Ok);
    EXPECT_NE(vd->note.find("proven"), std::string::npos) << vd->note;
}

TEST(FlowVerify, SimLevelRecordsSimulationOnly) {
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/mux4.blif");
    FlowOptions opts;
    opts.verify = VerifyLevel::Sim;
    const StatusOr<FlowResult> out = run_lily_flow_checked(net, lib, opts);
    ASSERT_TRUE(out.is_ok()) << out.status().to_string();
    const StageDiagnostics* vd = out.value().diagnostics.find("verify");
    ASSERT_NE(vd, nullptr);
    EXPECT_EQ(vd->state, StageState::Ok);
    EXPECT_NE(vd->note.find("simulation only"), std::string::npos) << vd->note;
}

TEST(FlowVerify, MiscompareFaultFailsTheFlowWithCounterexample) {
    FaultGuard fault("verify:miscompare");
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/full_adder.blif");
    const StatusOr<FlowResult> out = run_lily_flow_checked(net, lib, prove_options());
    ASSERT_FALSE(out.is_ok());
    EXPECT_EQ(out.status().code(), StatusCode::InvariantViolation);
    EXPECT_NE(out.status().to_string().find("counterexample"), std::string::npos)
        << out.status().to_string();
}

TEST(FlowVerify, EcoFlowProvesEditedNetlist) {
    const Library lib = load_msu_big();
    const Network net =
        read_blif_file(std::string(LILY_SOURCE_DIR) + "/examples/circuits/parity8.blif");
    StatusOr<PipelineState> built = build_pipeline(net, lib, prove_options());
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();

    const NetDelta delta = local_delta(state.net, 2, 0xEC0);
    const StatusOr<EcoStats> eco = run_eco_flow_checked(state, delta);
    ASSERT_TRUE(eco.is_ok()) << eco.status().to_string();
    const StageDiagnostics* vd = eco.value().diagnostics.find("verify");
    ASSERT_NE(vd, nullptr);
    EXPECT_TRUE(vd->state == StageState::Ok || vd->state == StageState::Degraded);
}

}  // namespace
}  // namespace lily
