#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/disjoint_set.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/sparse.hpp"
#include "util/text.hpp"

namespace lily {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Geometry, ManhattanAndEuclidean) {
    const Point a{0, 0};
    const Point b{3, 4};
    EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
    EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
    EXPECT_DOUBLE_EQ(euclidean_sq(a, b), 25.0);
}

TEST(Geometry, EmptyRectIsEmpty) {
    const Rect r;
    EXPECT_TRUE(r.empty());
    EXPECT_DOUBLE_EQ(r.half_perimeter(), 0.0);
    EXPECT_DOUBLE_EQ(r.area(), 0.0);
    EXPECT_FALSE(r.contains({0, 0}));
}

TEST(Geometry, ExpandBuildsBoundingBox) {
    Rect r;
    r.expand({1, 5});
    EXPECT_FALSE(r.empty());
    EXPECT_DOUBLE_EQ(r.half_perimeter(), 0.0);
    r.expand({4, 1});
    EXPECT_DOUBLE_EQ(r.width(), 3.0);
    EXPECT_DOUBLE_EQ(r.height(), 4.0);
    EXPECT_EQ(r.center(), (Point{2.5, 3.0}));
    EXPECT_TRUE(r.contains({2, 2}));
    EXPECT_FALSE(r.contains({0, 2}));
}

TEST(Geometry, ExpandRectMergesBoxes) {
    Rect a({0, 0}, {1, 1});
    const Rect b({5, 5}, {6, 7});
    a.expand(b);
    EXPECT_DOUBLE_EQ(a.width(), 6.0);
    EXPECT_DOUBLE_EQ(a.height(), 7.0);
    Rect empty;
    a.expand(empty);  // no-op
    EXPECT_DOUBLE_EQ(a.width(), 6.0);
}

TEST(Geometry, BoundingBoxAndHpwl) {
    const std::array<Point, 3> pts{Point{0, 0}, Point{2, 5}, Point{1, 1}};
    const Rect bb = bounding_box(pts);
    EXPECT_DOUBLE_EQ(bb.width(), 2.0);
    EXPECT_DOUBLE_EQ(bb.height(), 5.0);
    EXPECT_DOUBLE_EQ(half_perimeter_wirelength(pts), 7.0);
}

TEST(Geometry, ManhattanToRect) {
    const Rect r({1, 1}, {3, 2});
    EXPECT_DOUBLE_EQ(manhattan_to_rect({2, 1.5}, r), 0.0);  // inside
    EXPECT_DOUBLE_EQ(manhattan_to_rect({0, 1.5}, r), 1.0);  // left
    EXPECT_DOUBLE_EQ(manhattan_to_rect({4, 3}, r), 2.0);    // corner
    EXPECT_DOUBLE_EQ(manhattan_to_rect({2, 0}, r), 1.0);    // below
}

TEST(Geometry, CenterOfMass) {
    const std::array<Point, 2> pts{Point{0, 0}, Point{2, 4}};
    EXPECT_EQ(center_of_mass(pts), (Point{1, 2}));
    const std::array<double, 2> w{3.0, 1.0};
    EXPECT_EQ(center_of_mass(pts, w), (Point{0.5, 1.0}));
    const std::array<double, 2> zero{0.0, 0.0};
    EXPECT_EQ(center_of_mass(pts, zero), (Point{1, 2}));  // fallback
}

TEST(Geometry, MedianCoordinate) {
    EXPECT_DOUBLE_EQ(median_coordinate({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(median_coordinate({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median_coordinate({1.0, 9.0}), 5.0);
    EXPECT_DOUBLE_EQ(median_coordinate({}), 0.0);
}

TEST(Geometry, ManhattanMedianOfRectsMinimizesSum) {
    const std::array<Rect, 3> rects{Rect({0, 0}, {1, 1}), Rect({4, 4}, {5, 5}),
                                    Rect({4, 0}, {5, 1})};
    const Point p = manhattan_median_of_rects(rects);
    const auto cost = [&](const Point& q) {
        double s = 0;
        for (const Rect& r : rects) s += manhattan_to_rect(q, r);
        return s;
    };
    const double at_median = cost(p);
    // Probe a grid; nothing should beat the median.
    for (double x = -1; x <= 6; x += 0.5) {
        for (double y = -1; y <= 6; y += 0.5) {
            EXPECT_GE(cost({x, y}) + 1e-12, at_median);
        }
    }
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
    Rng rng(7);
    std::array<int, 10> hits{};
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.next_below(10);
        ASSERT_LT(v, 10u);
        ++hits[v];
    }
    for (int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, DoublesInUnitInterval) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
    for (int i = 0; i < 100; ++i) {
        const double d = rng.next_double(2.0, 3.0);
        EXPECT_GE(d, 2.0);
        EXPECT_LT(d, 3.0);
    }
}

// ------------------------------------------------------------ disjoint set

TEST(DisjointSet, UniteAndFind) {
    DisjointSet ds(5);
    EXPECT_FALSE(ds.same(0, 1));
    EXPECT_TRUE(ds.unite(0, 1));
    EXPECT_FALSE(ds.unite(0, 1));
    EXPECT_TRUE(ds.same(0, 1));
    EXPECT_TRUE(ds.unite(2, 3));
    EXPECT_TRUE(ds.unite(1, 3));
    EXPECT_TRUE(ds.same(0, 2));
    EXPECT_EQ(ds.set_size(3), 4u);
    EXPECT_EQ(ds.set_size(4), 1u);
}

// ------------------------------------------------------------------ sparse

TEST(Sparse, MultiplyMatchesDense) {
    SparseMatrix::Builder b(3);
    b.add(0, 0, 2.0);
    b.add(1, 1, 3.0);
    b.add(2, 2, 4.0);
    b.add(0, 1, -1.0);
    b.add(1, 0, -1.0);
    b.add(0, 0, 1.0);  // duplicate merges
    const SparseMatrix m = std::move(b).build();
    const std::array<double, 3> x{1.0, 2.0, 3.0};
    std::array<double, 3> y{};
    m.multiply(x, y);
    EXPECT_DOUBLE_EQ(y[0], 3.0 * 1 - 1.0 * 2);
    EXPECT_DOUBLE_EQ(y[1], -1.0 * 1 + 3.0 * 2);
    EXPECT_DOUBLE_EQ(y[2], 4.0 * 3);
    EXPECT_DOUBLE_EQ(m.diagonal(0), 3.0);
}

TEST(Sparse, CgSolvesSpdSystem) {
    // Laplacian of a path 0-1-2 with anchors at both ends: strictly SPD.
    SparseMatrix::Builder b(3);
    b.add_spring(0, 1, 1.0);
    b.add_spring(1, 2, 1.0);
    b.add_anchor(0, 1.0);
    b.add_anchor(2, 1.0);
    const SparseMatrix a = std::move(b).build();
    // Right-hand side: anchor 0 at position 0, anchor 2 at position 3.
    std::array<double, 3> rhs{0.0, 0.0, 3.0};
    std::array<double, 3> x{};
    const CgResult r = conjugate_gradient(a, rhs, x);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.residual_norm, 1e-8);
    // Solution of the spring chain: x = (0.6, 1.2, 2.1)? Verify via residual
    // instead of hand algebra: A x == rhs.
    std::array<double, 3> ax{};
    a.multiply(x, ax);
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

TEST(Sparse, CgLargeChainConverges) {
    constexpr std::size_t n = 500;
    SparseMatrix::Builder b(n);
    for (std::size_t i = 0; i + 1 < n; ++i) b.add_spring(i, i + 1, 1.0);
    b.add_anchor(0, 2.0);
    b.add_anchor(n - 1, 2.0);
    const SparseMatrix a = std::move(b).build();
    std::vector<double> rhs(n, 0.0);
    rhs[n - 1] = 2.0 * 100.0;  // far pad at 100
    std::vector<double> x(n, 0.0);
    const CgResult r = conjugate_gradient(a, rhs, x);
    EXPECT_TRUE(r.converged);
    // Monotone interpolation between the pads.
    for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_LE(x[i], x[i + 1] + 1e-9);
}

// -------------------------------------------------------------------- text

TEST(Text, Trim) {
    EXPECT_EQ(trim("  hi \t\r\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Text, SplitWs) {
    const auto t = split_ws("  a\tbb  c ");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], "a");
    EXPECT_EQ(t[1], "bb");
    EXPECT_EQ(t[2], "c");
    EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Text, SplitChar) {
    const auto t = split_char("a,,b", ',');
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], "a");
    EXPECT_EQ(t[1], "");
    EXPECT_EQ(t[2], "b");
}

TEST(Text, ParseDouble) {
    EXPECT_DOUBLE_EQ(parse_double("2.5", "test"), 2.5);
    EXPECT_DOUBLE_EQ(parse_double("-1e3", "test"), -1000.0);
    EXPECT_THROW(parse_double("abc", "test"), std::invalid_argument);
    EXPECT_THROW(parse_double("1.5x", "test"), std::invalid_argument);
}

TEST(Text, FormatFixed) {
    EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace lily
