#include <gtest/gtest.h>

#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

Network full_adder() {
    Network n("fa");
    const NodeId a = n.add_input("a");
    const NodeId b = n.add_input("b");
    const NodeId cin = n.add_input("cin");
    const NodeId axb = n.make_xor2(a, b);
    const NodeId sum = n.make_xor2(axb, cin);
    const NodeId ab = n.make_and2(a, b);
    const NodeId c_axb = n.make_and2(axb, cin);
    const NodeId cout = n.make_or2(ab, c_axb);
    n.add_output("sum", sum);
    n.add_output("cout", cout);
    return n;
}

Network random_network(std::uint64_t seed, unsigned n_pi = 8, unsigned n_gates = 50) {
    Rng rng(seed);
    Network net("rand" + std::to_string(seed));
    std::vector<NodeId> pool;
    for (unsigned i = 0; i < n_pi; ++i) pool.push_back(net.add_input("pi" + std::to_string(i)));
    for (unsigned i = 0; i < n_gates; ++i) {
        const unsigned k = 2 + static_cast<unsigned>(rng.next_below(3));
        std::vector<NodeId> ins;
        for (unsigned j = 0; j < k; ++j) ins.push_back(pool[rng.next_below(pool.size())]);
        std::sort(ins.begin(), ins.end());
        ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
        NodeId g;
        switch (rng.next_below(5)) {
            case 0: g = net.make_and(ins); break;
            case 1: g = net.make_or(ins); break;
            case 2: g = net.make_nand(ins); break;
            case 3: g = net.make_nor(ins); break;
            default: g = net.make_xor(ins); break;
        }
        pool.push_back(g);
    }
    for (unsigned i = 0; i < 4; ++i) net.add_output("po" + std::to_string(i),
                                                    pool[pool.size() - 1 - i]);
    net.sweep();
    return net;
}

struct MapCase {
    MapObjective objective;
    CoverMode mode;
};

class BaseMapperParam : public ::testing::TestWithParam<MapCase> {};

TEST_P(BaseMapperParam, FullAdderMapsEquivalent) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_big();
    BaseMapper mapper(lib);
    BaseMapperOptions opts;
    opts.objective = GetParam().objective;
    opts.mode = GetParam().mode;
    const MapResult res = mapper.map(r.graph, opts);
    res.netlist.check(lib);
    EXPECT_GT(res.netlist.gate_count(), 0u);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 16, 99));
}

TEST_P(BaseMapperParam, RandomNetworksMapEquivalent) {
    const Library lib = load_msu_big();
    BaseMapper mapper(lib);
    for (std::uint64_t seed = 50; seed < 56; ++seed) {
        const Network net = random_network(seed);
        const DecomposeResult r = decompose(net);
        BaseMapperOptions opts;
        opts.objective = GetParam().objective;
        opts.mode = GetParam().mode;
        const MapResult res = mapper.map(r.graph, opts);
        res.netlist.check(lib);
        EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, seed)) << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BaseMapperParam,
    ::testing::Values(MapCase{MapObjective::Area, CoverMode::Trees},
                      MapCase{MapObjective::Area, CoverMode::Cones},
                      MapCase{MapObjective::Delay, CoverMode::Trees},
                      MapCase{MapObjective::Delay, CoverMode::Cones}),
    [](const ::testing::TestParamInfo<MapCase>& info) {
        std::string s = info.param.objective == MapObjective::Area ? "Area" : "Delay";
        s += info.param.mode == CoverMode::Trees ? "Trees" : "Cones";
        return s;
    });

TEST(BaseMapper, AreaModeBeatsNaiveCoverOnAnd4) {
    // AND of 4 inputs: naive per-node cover = 3 nand2 + 3 inv (area 9.0 in
    // msu_big); the and4 gate costs 5.0, so area DP must find area <= 5.0.
    Network net("and4");
    std::vector<NodeId> ins;
    for (int i = 0; i < 4; ++i) ins.push_back(net.add_input("i" + std::to_string(i)));
    net.add_output("f", net.make_and(ins));
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_big();
    const MapResult res = BaseMapper(lib).map(r.graph);
    EXPECT_LE(res.total_area, lib.gate(*lib.find("and4")).area + 1e-9);
    EXPECT_EQ(res.netlist.gate_count(), 1u);
}

TEST(BaseMapper, TinyLibraryUsesMoreGatesThanBig) {
    const Network net = random_network(60, 10, 80);
    const DecomposeResult r = decompose(net);
    const Library tiny = load_msu_tiny();
    const Library big = load_msu_big();
    const MapResult res_t = BaseMapper(tiny).map(r.graph);
    const MapResult res_b = BaseMapper(big).map(r.graph);
    // The big library can absorb more logic per gate.
    EXPECT_LE(res_b.netlist.gate_count(), res_t.netlist.gate_count());
    // msu_big is a superset of msu_tiny, so the DP cost with the big
    // library dominates node-by-node. (Extracted area can still be larger
    // because big gates bury multi-fanout nodes and force duplication —
    // exactly the routing-complexity trade-off the paper discusses.)
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        EXPECT_LE(res_b.solution[v].cost, res_t.solution[v].cost + 1e-9) << v;
    }
}

TEST(BaseMapper, DelayModeNoSlowerThanAreaMode) {
    const Library lib = load_msu_big();
    BaseMapper mapper(lib);
    for (std::uint64_t seed = 70; seed < 74; ++seed) {
        const Network net = random_network(seed, 8, 60);
        const DecomposeResult r = decompose(net);
        BaseMapperOptions area_opts;
        BaseMapperOptions delay_opts;
        delay_opts.objective = MapObjective::Delay;
        const MapResult res_d = mapper.map(r.graph, delay_opts);
        // Evaluate the area-mode result's arrival per the same node-cost
        // definition by re-running DP? Instead check internal consistency:
        // the delay-mode worst arrival is positive and finite.
        EXPECT_GT(res_d.worst_arrival, 0.0);
        EXPECT_LT(res_d.worst_arrival, 1e6);
        // And delay-mode area is >= area-mode area (it trades area away).
        const MapResult res_a = mapper.map(r.graph, area_opts);
        EXPECT_GE(res_d.total_area + 1e-9, res_a.total_area);
    }
}

TEST(BaseMapper, TreeModeNeverDuplicatesLogic) {
    const Library lib = load_msu_big();
    for (std::uint64_t seed = 80; seed < 84; ++seed) {
        const Network net = random_network(seed);
        const DecomposeResult r = decompose(net);
        BaseMapperOptions opts;
        opts.mode = CoverMode::Trees;
        const MapResult res = BaseMapper(lib).map(r.graph, opts);
        // No subject node may be absorbed by two different instances.
        std::vector<int> absorbed(r.graph.size(), 0);
        for (const GateInstance& inst : res.netlist.gates) {
            for (SubjectId w : inst.absorbed) ++absorbed[w];
        }
        for (SubjectId v = 0; v < r.graph.size(); ++v) EXPECT_LE(absorbed[v], 1) << v;
    }
}

TEST(BaseMapper, ConesCanBeatTreesOnArea) {
    // Cone mode's search space strictly contains tree mode's, so its cost
    // is never worse on the DP objective.
    const Library lib = load_msu_big();
    for (std::uint64_t seed = 90; seed < 95; ++seed) {
        const Network net = random_network(seed);
        const DecomposeResult r = decompose(net);
        BaseMapperOptions tree_opts;
        tree_opts.mode = CoverMode::Trees;
        BaseMapperOptions cone_opts;
        cone_opts.mode = CoverMode::Cones;
        const MapResult rt = BaseMapper(lib).map(r.graph, tree_opts);
        const MapResult rc = BaseMapper(lib).map(r.graph, cone_opts);
        // Compare DP costs at PO drivers (the real objective); extracted
        // area can differ because of sharing effects.
        double cost_t = 0, cost_c = 0;
        for (const SubjectOutput& po : r.graph.outputs()) {
            cost_t += rt.solution[po.driver].cost;
            cost_c += rc.solution[po.driver].cost;
        }
        EXPECT_LE(cost_c, cost_t + 1e-9) << seed;
    }
}

TEST(BaseMapper, SolutionCoversEveryGateNode) {
    const Network net = random_network(100);
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_tiny();
    const MapResult res = BaseMapper(lib).map(r.graph);
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        if (r.graph.node(v).kind == SubjectKind::Input) continue;
        EXPECT_TRUE(res.solution[v].has_match) << v;
        EXPECT_EQ(res.solution[v].match.root(), v);
    }
}

TEST(MappedNetlist, ChecksCatchCorruption) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_big();
    MapResult res = BaseMapper(lib).map(r.graph);
    MappedNetlist broken = res.netlist;
    ASSERT_FALSE(broken.gates.empty());
    broken.gates[0].inputs.push_back(broken.gates[0].inputs[0]);  // pin mismatch
    EXPECT_THROW(broken.check(lib), std::logic_error);
    MappedNetlist dangling = res.netlist;
    dangling.outputs.push_back({"ghost", static_cast<SubjectId>(123456)});
    EXPECT_THROW(dangling.check(lib), std::logic_error);
}

TEST(MappedNetlist, InstanceDrivingLookup) {
    const Network net = full_adder();
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_big();
    const MapResult res = BaseMapper(lib).map(r.graph);
    for (std::size_t i = 0; i < res.netlist.gates.size(); ++i) {
        EXPECT_EQ(res.netlist.instance_driving(res.netlist.gates[i].driver), i);
    }
    for (SubjectId in : res.netlist.subject_inputs) {
        EXPECT_EQ(res.netlist.instance_driving(in), MappedNetlist::npos);
    }
}

TEST(MappedNetlist, PoDrivenByInputSurvivesMapping) {
    Network net("wire");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("f", net.make_and2(a, b));
    net.add_output("copy_a", a);  // PO straight from a PI
    const DecomposeResult r = decompose(net);
    const Library lib = load_msu_tiny();
    const MapResult res = BaseMapper(lib).map(r.graph);
    res.netlist.check(lib);
    EXPECT_TRUE(equivalent_random(net, res.netlist.to_network(lib), 8, 5));
}

}  // namespace
}  // namespace lily
