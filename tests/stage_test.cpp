// Unit suite for the pass-manager layer (flow/stage.hpp): the stage
// descriptor table, budget derivation, recovery-rung gating, fault probes,
// trace-span nesting, and elapsed-ms accumulation across re-entered
// scopes. The bit-identity side of the refactor lives in golden_test.cpp;
// this file pins the executor's *mechanics*.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "circuits/benchmarks.hpp"
#include "flow/job.hpp"
#include "flow/stage.hpp"
#include "netlist/blif.hpp"
#include "util/fault.hpp"

namespace lily {
namespace {

FlowOptions quiet_options() {
    FlowOptions opts;
    opts.check = CheckLevel::Off;
    opts.verify = VerifyLevel::Off;
    return opts;
}

// ---- Descriptor table ---------------------------------------------------

TEST(StageTable, NamesAreUniqueAndNonEmpty) {
    std::set<std::string> seen;
    for (const StageDescriptor& d : stage_table()) {
        ASSERT_NE(d.name, nullptr);
        EXPECT_NE(std::string(d.name), "");
        EXPECT_TRUE(seen.insert(d.name).second) << "duplicate stage name " << d.name;
    }
    EXPECT_EQ(seen.size(), kStageCount);
}

TEST(StageTable, NameLookupRoundTrips) {
    for (const StageDescriptor& d : stage_table()) {
        const auto id = stage_id_from_name(d.name);
        ASSERT_TRUE(id.has_value()) << d.name;
        EXPECT_EQ(*id, d.id);
        EXPECT_STREQ(stage_name(d.id), d.name);
    }
    EXPECT_FALSE(stage_id_from_name("no-such-stage").has_value());
    EXPECT_FALSE(stage_id_from_name("").has_value());
}

TEST(StageTable, DescriptorIndexMatchesId) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
        EXPECT_EQ(static_cast<std::size_t>(stage_table()[i].id), i)
            << "table order must match enum order for O(1) lookup";
    }
}

TEST(StageTable, RecoveryRungsDeclaredInFiringOrder) {
    // The ladder is data: mapping's only rung is the baseline fallback,
    // routing degrades to HPWL metrics, verify falls back to simulation,
    // the adaptive schedule retries with rescaled wire weights, and every
    // ECO stage may escalate to a full reflow.
    const StageDescriptor& mapping = stage_descriptor(StageId::Mapping);
    ASSERT_EQ(mapping.n_rungs, 1u);
    EXPECT_STREQ(mapping.rungs[0], "baseline-fallback");

    const StageDescriptor& routing = stage_descriptor(StageId::Routing);
    ASSERT_EQ(routing.n_rungs, 1u);
    EXPECT_STREQ(routing.rungs[0], "hpwl-metrics");

    const StageDescriptor& verify = stage_descriptor(StageId::Verify);
    ASSERT_EQ(verify.n_rungs, 1u);
    EXPECT_STREQ(verify.rungs[0], "sim-fallback");

    const StageDescriptor& adaptive = stage_descriptor(StageId::Adaptive);
    ASSERT_EQ(adaptive.n_rungs, 1u);
    EXPECT_STREQ(adaptive.rungs[0], "wire-weight-retry");

    for (const StageId id : {StageId::Eco, StageId::EcoSubject, StageId::EcoMapping,
                             StageId::EcoPlacement, StageId::EcoRouting, StageId::EcoTiming}) {
        const StageDescriptor& d = stage_descriptor(id);
        ASSERT_EQ(d.n_rungs, 1u) << d.name;
        EXPECT_STREQ(d.rungs[0], "full-reflow") << d.name;
    }
}

// ---- Budget derivation --------------------------------------------------

TEST(FlowContextBudget, StageKeySelectsTheMatchingBudgetField) {
    FlowOptions opts = quiet_options();
    opts.budget.mapping_ms = 50.0;
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    EXPECT_TRUE(ctx.stage_budget(StageId::Mapping).limited());
    // Stages with BudgetKey::None stay unlimited when the flow has no
    // total budget, whatever the per-stage fields say.
    EXPECT_FALSE(ctx.stage_budget(StageId::Decompose).limited());
    EXPECT_FALSE(ctx.stage_budget(StageId::Timing).limited());
}

TEST(FlowContextBudget, StageBudgetIntersectsWithWholeFlowTotal) {
    FlowOptions opts = quiet_options();
    opts.budget.total_ms = 30.0;
    opts.budget.mapping_ms = 100000.0;  // far looser than the total
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    ASSERT_NE(ctx.total(), nullptr);
    StageBudget derived = ctx.stage_budget(StageId::Mapping);
    EXPECT_TRUE(derived.limited());
    // The derived deadline is clamped by the whole-flow remainder, never
    // the loose per-stage figure.
    EXPECT_LE(derived.remaining_ms(), 30.0 + 1.0);
    // Unbudgeted stages inherit the total as their only bound.
    EXPECT_TRUE(ctx.stage_budget(StageId::Decompose).limited());
}

TEST(FlowContextBudget, UnlimitedFlowHasNullTotal) {
    FlowOptions opts = quiet_options();
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    EXPECT_EQ(ctx.total(), nullptr);
}

// ---- Rung gating --------------------------------------------------------

TEST(FlowContextRungs, PolicyGatesDeclaredRungs) {
    FlowOptions opts = quiet_options();
    opts.recovery.allow_baseline_fallback = false;
    opts.recovery.allow_hpwl_metrics = false;
    FlowDiagnostics diag;
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_FALSE(ctx.rung_enabled(StageId::Mapping, "baseline-fallback"));
        EXPECT_FALSE(ctx.rung_enabled(StageId::Routing, "hpwl-metrics"));
        // Correctness rungs are unconditional.
        EXPECT_TRUE(ctx.rung_enabled(StageId::Verify, "sim-fallback"));
        EXPECT_TRUE(ctx.rung_enabled(StageId::Eco, "full-reflow"));
    }
    opts.recovery.allow_baseline_fallback = true;
    opts.recovery.allow_hpwl_metrics = true;
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_TRUE(ctx.rung_enabled(StageId::Mapping, "baseline-fallback"));
        EXPECT_TRUE(ctx.rung_enabled(StageId::Routing, "hpwl-metrics"));
    }
}

TEST(FlowContextRungs, UndeclaredRungsNeverFire) {
    FlowOptions opts = quiet_options();
    opts.recovery.allow_baseline_fallback = true;  // policy says yes...
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    // ...but the descriptor table does not declare the rung on these
    // stages, so it can never fire there.
    EXPECT_FALSE(ctx.rung_enabled(StageId::Routing, "baseline-fallback"));
    EXPECT_FALSE(ctx.rung_enabled(StageId::Decompose, "baseline-fallback"));
    EXPECT_FALSE(ctx.rung_enabled(StageId::Mapping, "no-such-rung"));
}

TEST(FlowContextRungs, RetryRungFollowsMaxRetries) {
    FlowOptions opts = quiet_options();
    opts.recovery.max_retries = 0;
    FlowDiagnostics diag;
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_FALSE(ctx.rung_enabled(StageId::Adaptive, "wire-weight-retry"));
    }
    opts.recovery.max_retries = 2;
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_TRUE(ctx.rung_enabled(StageId::Adaptive, "wire-weight-retry"));
    }
}

// ---- Fault probes -------------------------------------------------------

TEST(FlowContextFaults, ProbesFireOnlyForTheMappedRegistryStage) {
    set_fault_spec("matcher:no-match");
    FlowOptions opts = quiet_options();
    FlowDiagnostics diag;
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_TRUE(ctx.fault(StageId::Mapping, "no-match"));
        EXPECT_FALSE(ctx.fault(StageId::Mapping, "some-other-kind"));
        EXPECT_FALSE(ctx.fault(StageId::Routing, "no-match"));
        // Stages with no fault_stage mapping never probe true.
        EXPECT_FALSE(ctx.fault(StageId::Decompose, "no-match"));
        EXPECT_FALSE(ctx.fault(StageId::Timing, "no-match"));
    }
    set_fault_spec("");
    {
        FlowContext ctx("test", opts, diag);
        EXPECT_FALSE(ctx.fault(StageId::Mapping, "no-match"));
    }
}

TEST(FlowContextFaults, EcoStagesShareTheEcoRegistryName) {
    set_fault_spec("eco:stale-epoch");
    FlowOptions opts = quiet_options();
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    EXPECT_TRUE(ctx.fault(StageId::Eco, "stale-epoch"));
    EXPECT_TRUE(ctx.fault(StageId::EcoMapping, "stale-epoch"));
    EXPECT_FALSE(ctx.fault(StageId::Mapping, "stale-epoch"));
    set_fault_spec("");
}

// ---- Scope mechanics: diagnostics, traces, accumulation -----------------

TEST(StageScope, RecordsStateNoteAndRetries) {
    FlowOptions opts = quiet_options();
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    StageExecutor exec(ctx);
    exec.run(StageId::Decompose, [&](StageScope& s) { s.ok(); });
    exec.run(StageId::Mapping, [&](StageScope& s) {
        ++s.diag().retries;
        s.recovered("fell back");
    });
    EXPECT_EQ(diag.stage("decompose").state, StageState::Ok);
    const StageDiagnostics& mapping = diag.stage("mapping");
    EXPECT_EQ(mapping.state, StageState::Recovered);
    EXPECT_EQ(mapping.note, "fell back");
    EXPECT_EQ(mapping.retries, 1u);
    EXPECT_TRUE(diag.degraded());
}

TEST(StageScope, EmptyNotePreservesExistingNote) {
    // The lily fallback path depends on this: Failed after Recovered must
    // keep the rung's note, not blank it.
    FlowOptions opts = quiet_options();
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    StageExecutor exec(ctx);
    exec.run(StageId::Mapping, [&](StageScope& s) {
        s.recovered("rung note");
        s.failed();
    });
    EXPECT_EQ(diag.stage("mapping").state, StageState::Failed);
    EXPECT_EQ(diag.stage("mapping").note, "rung note");
}

TEST(StageScope, TraceSpansNestWithDepthAndClose) {
    TraceSink sink;
    FlowOptions opts = quiet_options();
    opts.trace = &sink;
    FlowDiagnostics diag;
    {
        FlowContext ctx("test-flow", opts, diag);
        StageExecutor exec(ctx);
        exec.run(StageId::Mapping, [&](StageScope&) {
            exec.run(StageId::Placement, [&](StageScope& inner) { inner.ok(); });
        });
        exec.run(StageId::Routing, [&](StageScope& s) { s.ok(); });
    }
    EXPECT_TRUE(sink.all_closed());
    const auto flows = sink.flows();
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].name, "test-flow");
    const auto spans = sink.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "mapping");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_EQ(spans[1].name, "placement");
    EXPECT_EQ(spans[1].depth, 2);  // opened inside the mapping scope
    EXPECT_EQ(spans[2].name, "routing");
    EXPECT_EQ(spans[2].depth, 1);
    for (const TraceSpan& s : spans) {
        EXPECT_TRUE(s.closed) << s.name;
        EXPECT_EQ(s.flow_id, flows[0].id);
        EXPECT_TRUE(stage_id_from_name(s.name).has_value()) << s.name;
    }
}

TEST(StageScope, ElapsedAccumulatesAcrossReenteredScopes) {
    TraceSink sink;
    FlowOptions opts = quiet_options();
    opts.trace = &sink;
    FlowDiagnostics diag;
    {
        FlowContext ctx("test-flow", opts, diag);
        StageExecutor exec(ctx);
        const auto busy_wait = [] {
            const auto until =
                StageBudget::Clock::now() + std::chrono::milliseconds(2);
            while (StageBudget::Clock::now() < until) {
            }
        };
        exec.run(StageId::Mapping, [&](StageScope& s) {
            busy_wait();
            s.ok();
        });
        exec.run(StageId::Mapping, [&](StageScope& s) {
            busy_wait();
            s.ok();
        });
    }
    // One diagnostics entry accumulated both attempts...
    const StageDiagnostics& mapping = diag.stage("mapping");
    EXPECT_GE(mapping.elapsed_ms, 4.0 * 0.9);
    // ...and the two spans carry the exact increments: their sum equals the
    // accumulated figure bit-for-bit (same dt fed both sides).
    const auto spans = sink.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].elapsed_ms + spans[1].elapsed_ms, mapping.elapsed_ms);
}

TEST(StageScope, BudgetReferenceIsStableWithinTheScope) {
    FlowOptions opts = quiet_options();
    opts.budget.mapping_ms = 25.0;
    FlowDiagnostics diag;
    FlowContext ctx("test", opts, diag);
    StageExecutor exec(ctx);
    exec.run(StageId::Mapping, [&](StageScope& s) {
        StageBudget* first = &s.budget();
        StageBudget* second = &s.budget();
        EXPECT_EQ(first, second);  // derived once, stable for kernels
        EXPECT_TRUE(first->limited());
        s.ok();
    });
}

TEST(TraceSinkTest, JsonlDumpCoversAllRecordTypes) {
    TraceSink sink;
    const std::uint64_t flow = sink.begin_flow("f");
    const std::size_t span = sink.begin_span("mapping");
    sink.end_span(span, 1.5, "ok", 0, "");
    sink.counter("nodes", 42.0);
    sink.end_flow(flow);
    EXPECT_TRUE(sink.all_closed());
    const std::string jsonl = sink.to_jsonl();
    EXPECT_NE(jsonl.find("\"type\":\"flow\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"span\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"counter\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"name\":\"mapping\""), std::string::npos);
}

TEST(TraceSinkTest, UnclosedSpanIsDetected) {
    TraceSink sink;
    sink.begin_flow("f");
    sink.begin_span("mapping");
    EXPECT_FALSE(sink.all_closed());
}

// ---- Executor end-to-end: served jobs carry per-stage timings -----------

std::string msu_tiny_genlib_text() {
    std::ifstream in(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib",
                     std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(JobStageTimes, OutcomeListsEveryExecutedStage) {
    JobSpec spec;
    spec.name = "stage-times";
    spec.blif = write_blif(make_alu(3, false));
    spec.genlib = msu_tiny_genlib_text();
    ASSERT_FALSE(spec.genlib.empty());
    spec.options.kind = JobFlowKind::Lily;
    const JobOutcome out = run_flow_job(spec);
    ASSERT_EQ(out.state, JobState::Ok) << out.status_message;
    ASSERT_FALSE(out.stage_times.empty());
    std::set<std::string> names;
    for (const StageTime& st : out.stage_times) {
        EXPECT_GE(st.elapsed_ms, 0.0);
        // Every reported name comes from the shared stage table.
        EXPECT_TRUE(stage_id_from_name(st.name).has_value()) << st.name;
        names.insert(st.name);
    }
    // The job's own parse stages and the flow's core stages all show up.
    for (const char* expected : {"parse-blif", "parse-genlib", "decompose", "mapping",
                                 "placement", "routing", "timing"}) {
        EXPECT_TRUE(names.count(expected)) << "missing stage " << expected;
    }
    // Timing telemetry must never leak into the pinned report document.
    EXPECT_EQ(out.report_json.find("stage_times"), std::string::npos);
}

TEST(JobStageTimes, ParseFailureStillReportsParseStage) {
    JobSpec spec;
    spec.name = "bad";
    spec.blif = "this is not a blif file\n";
    spec.genlib = msu_tiny_genlib_text();
    const JobOutcome out = run_flow_job(spec);
    ASSERT_EQ(out.state, JobState::Error);
    bool saw_parse = false;
    for (const StageTime& st : out.stage_times) saw_parse = saw_parse || st.name == "parse-blif";
    EXPECT_TRUE(saw_parse);
}

}  // namespace
}  // namespace lily
