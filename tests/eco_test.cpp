// Incremental (ECO) pipeline tests: randomized delta sequences must keep
// the incrementally maintained mapping sim-equivalent to a from-scratch
// flow, the degenerate `delta = everything` must reproduce the batch flow
// bit for bit (at 1 and 8 threads), and the eco:stale-epoch fault must
// surface as InvariantViolation through the PipelineChecker gate.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "flow/pipeline.hpp"
#include "library/standard_cells.hpp"
#include "netlist/delta.hpp"
#include "netlist/simulate.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace lily {
namespace {

/// Restores the (process-global) fault spec when a test exits, so a failing
/// assertion cannot leak a fault into later tests.
class FaultGuard {
public:
    explicit FaultGuard(std::string spec) { set_fault_spec(std::move(spec)); }
    ~FaultGuard() { set_fault_spec(""); }
};

// ------------------------------------------------ randomized delta streams

TEST(Eco, RandomDeltaSequencesStayEquivalent) {
    const Library lib = load_msu_big();
    std::vector<std::pair<std::string, Network>> seeds;
    seeds.emplace_back("symmetric9", make_symmetric9());
    seeds.emplace_back("priority", make_priority_controller(10));
    seeds.emplace_back("ecc", make_ecc_checker(16, false));
    seeds.emplace_back("alu", make_alu(4, false));
    seeds.emplace_back("control", make_control_logic(12, 6, 80, 7, "eco"));

    FlowOptions opts;
    opts.check = CheckLevel::Light;
    for (auto& [name, net] : seeds) {
        StatusOr<PipelineState> built = build_pipeline(net, lib, opts);
        ASSERT_TRUE(built.is_ok()) << name << ": " << built.status().to_string();
        PipelineState state = std::move(built).value();

        for (std::uint64_t step = 0; step < 3; ++step) {
            const NetDelta delta = random_delta(state.net, 3, 0x515D + 17 * step);
            StatusOr<EcoStats> eco = run_eco_flow_checked(state, delta);
            ASSERT_TRUE(eco.is_ok())
                << name << " step " << step << ": " << eco.status().to_string();
            EXPECT_EQ(eco.value().version, state.net.version());
            // The maintained mapping must compute the edited network.
            EXPECT_TRUE(equivalent_random(state.net, state.flow.netlist.to_network(lib), 8,
                                          11 + step))
                << name << " step " << step;
        }

        // ...and agree with a from-scratch flow of the final edited circuit.
        const FlowResult scratch = run_lily_flow(state.net, lib, opts);
        EXPECT_TRUE(equivalent_random(scratch.netlist.to_network(lib),
                                      state.flow.netlist.to_network(lib), 8, 99))
            << name;
    }
}

// ------------------------------------------- delta = everything bit-identity

void expect_full_rebuild_matches_batch(std::size_t threads) {
    const Library lib = load_msu_big();
    const Network net = make_control_logic(16, 8, 150, 0xEC0, "eco-det");
    FlowOptions opts;
    opts.threads = threads;

    StatusOr<PipelineState> built = build_pipeline(net, lib, opts);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();

    // Dirty the incremental state with a real edit first, so the full
    // rebuild must discard every cached artifact, not just start fresh.
    StatusOr<EcoStats> warm = run_eco_flow_checked(state, random_delta(state.net, 2, 5));
    ASSERT_TRUE(warm.is_ok()) << warm.status().to_string();

    StatusOr<EcoStats> full = run_eco_flow_checked(state, NetDelta::full_rebuild());
    ASSERT_TRUE(full.is_ok()) << full.status().to_string();
    EXPECT_TRUE(full.value().full_reflow);

    const FlowResult batch = run_lily_flow(state.net, lib, opts);
    const FlowResult& eco = state.flow;
    EXPECT_EQ(eco.metrics.gate_count, batch.metrics.gate_count);
    EXPECT_EQ(eco.metrics.cell_area, batch.metrics.cell_area);
    EXPECT_EQ(eco.metrics.chip_area, batch.metrics.chip_area);
    EXPECT_EQ(eco.metrics.wirelength, batch.metrics.wirelength);
    EXPECT_EQ(eco.metrics.critical_delay, batch.metrics.critical_delay);
    EXPECT_EQ(eco.metrics.max_congestion, batch.metrics.max_congestion);
    ASSERT_EQ(eco.final_positions.size(), batch.final_positions.size());
    for (std::size_t i = 0; i < eco.final_positions.size(); ++i) {
        ASSERT_EQ(eco.final_positions[i].x, batch.final_positions[i].x) << "instance " << i;
        ASSERT_EQ(eco.final_positions[i].y, batch.final_positions[i].y) << "instance " << i;
    }
    ASSERT_EQ(eco.pad_positions.size(), batch.pad_positions.size());
    for (std::size_t i = 0; i < eco.pad_positions.size(); ++i) {
        ASSERT_EQ(eco.pad_positions[i].x, batch.pad_positions[i].x);
        ASSERT_EQ(eco.pad_positions[i].y, batch.pad_positions[i].y);
    }
    ThreadPool::global().resize(0);
}

TEST(Eco, FullRebuildBitIdenticalToBatch1Thread) { expect_full_rebuild_matches_batch(1); }

TEST(Eco, FullRebuildBitIdenticalToBatch8Threads) { expect_full_rebuild_matches_batch(8); }

// ----------------------------------------------------- reuse bookkeeping

TEST(Eco, SmallEditReusesMostArtifacts) {
    const Library lib = load_msu_big();
    const Network net = make_control_logic(24, 12, 300, 0xBEE5, "eco-reuse");
    StatusOr<PipelineState> built = build_pipeline(net, lib);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();

    // local_delta keeps the edit's transitive fanout bounded — the shape of
    // a real ECO fix, and the case the reuse machinery is built for. (A
    // uniform random edit near the inputs legitimately dirties most of the
    // design, where reuse ratios approach zero by construction.)
    StatusOr<EcoStats> eco = run_eco_flow_checked(state, local_delta(state.net, 2, 9));
    ASSERT_TRUE(eco.is_ok()) << eco.status().to_string();
    const EcoStats& s = eco.value();
    EXPECT_FALSE(s.full_reflow);
    EXPECT_GT(s.reused_nodes, s.remapped_nodes) << "a 2-edit delta should re-solve a minority";
    EXPECT_LT(s.placed_cells, s.total_cells);
    EXPECT_GT(s.timing_reused, 0u);
    EXPECT_GT(s.subject_nodes_after, 0u);
    EXPECT_GE(s.subject_nodes_after, s.subject_nodes_before);
    EXPECT_EQ(s.version, state.net.version());
    // The maintained artifacts still compute the edited circuit.
    EXPECT_TRUE(equivalent_random(state.net, state.flow.netlist.to_network(lib), 8, 21));
}

TEST(Eco, EmptyDeltaIsNoOp) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(8);
    StatusOr<PipelineState> built = build_pipeline(net, lib);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();
    const Version before = state.net.version();

    StatusOr<EcoStats> eco = run_eco_flow_checked(state, NetDelta{});
    ASSERT_TRUE(eco.is_ok()) << eco.status().to_string();
    EXPECT_EQ(state.net.version(), before);
    EXPECT_EQ(eco.value().version, before);
    EXPECT_FALSE(eco.value().full_reflow);
    EXPECT_EQ(eco.value().remapped_nodes, 0u);
}

// ------------------------------------------------------- staleness gating

TEST(Eco, StaleEpochFaultSurfacesInvariantViolation) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(8);
    StatusOr<PipelineState> built = build_pipeline(net, lib);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();

    FaultGuard fault("eco:stale-epoch");
    StatusOr<EcoStats> eco = run_eco_flow_checked(state, random_delta(state.net, 2, 3));
    ASSERT_FALSE(eco.is_ok());
    EXPECT_EQ(eco.status().code(), StatusCode::InvariantViolation);
    const std::string msg = eco.status().to_string();
    EXPECT_NE(msg.find("stale"), std::string::npos) << msg;
}

TEST(Eco, UnbuiltStateRejected) {
    PipelineState state;  // never built
    StatusOr<EcoStats> eco = run_eco_flow_checked(state, NetDelta::full_rebuild());
    ASSERT_FALSE(eco.is_ok());
    EXPECT_EQ(eco.status().code(), StatusCode::InvariantViolation);
}

// PipelineChecker unit coverage: the three lineage violations.
TEST(PipelineCheckerUnit, FlagsNeverBuiltStaleAndFuture) {
    const PipelineChecker checker;
    const std::vector<StageVersionRecord> ok{{"subject", 3, 3}, {"mapping", 3, 3}};
    EXPECT_FALSE(checker.check(ok).has_errors());

    const std::vector<StageVersionRecord> never{{"mapping", kNeverBuilt, 2}};
    CheckReport rep = checker.check(never);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("never built"));

    const std::vector<StageVersionRecord> behind{{"mapping", 2, 5}};
    rep = checker.check(behind);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("stale"));

    const std::vector<StageVersionRecord> ahead{{"backend", 7, 5}};
    rep = checker.check(ahead);
    EXPECT_TRUE(rep.has_errors());
    EXPECT_TRUE(rep.mentions("corrupted"));
}

}  // namespace
}  // namespace lily
