// Cross-module property tests: the invariants DESIGN.md commits to,
// exercised over seeded random instances with TEST_P sweeps.
#include <gtest/gtest.h>

#include <fstream>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "library/standard_cells.hpp"
#include "lily/lily_mapper.hpp"
#include "map/base_mapper.hpp"
#include "match/matcher.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "subject/decompose.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

Network random_network(std::uint64_t seed, unsigned n_pi = 8, unsigned n_gates = 60) {
    return make_control_logic(n_pi, 4, n_gates, seed, "prop" + std::to_string(seed));
}

// ---------------------------------------------------------------- matcher

/// THE matcher soundness property: for every match, the subject logic it
/// covers computes exactly the gate function of the bound inputs.
class MatcherSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherSoundness, EveryMatchComputesGateFunction) {
    const Network net = random_network(GetParam());
    const DecomposeResult r = decompose(net);
    const SubjectGraph& g = r.graph;
    const Library lib = load_msu_big();
    const Matcher matcher(lib);

    for (SubjectId v = 0; v < g.size(); ++v) {
        if (g.node(v).kind == SubjectKind::Input) continue;
        for (const Match& m : matcher.matches_at(g, v)) {
            const Gate& gate = lib.gate(m.gate);
            // Distinct leaf signals get distinct variables.
            std::vector<SubjectId> distinct;
            std::vector<unsigned> pin_var(m.inputs.size());
            for (std::size_t k = 0; k < m.inputs.size(); ++k) {
                auto it = std::find(distinct.begin(), distinct.end(), m.inputs[k]);
                if (it == distinct.end()) {
                    pin_var[k] = static_cast<unsigned>(distinct.size());
                    distinct.push_back(m.inputs[k]);
                } else {
                    pin_var[k] = static_cast<unsigned>(it - distinct.begin());
                }
            }
            const unsigned n = static_cast<unsigned>(distinct.size());
            ASSERT_LE(n, 8u);

            // Evaluate the covered subject logic over the distinct leaves.
            std::unordered_map<SubjectId, TruthTable> val;
            for (unsigned i = 0; i < n; ++i) {
                val.emplace(distinct[i], TruthTable::variable(i, n));
            }
            for (const SubjectId w : m.covered) {  // ascending = topological
                const SubjectNode& node = g.node(w);
                if (node.kind == SubjectKind::Inv) {
                    val.insert_or_assign(w, ~val.at(node.fanin0));
                } else {
                    val.insert_or_assign(w, ~(val.at(node.fanin0) & val.at(node.fanin1)));
                }
            }

            // Gate function with pins identified per the binding.
            TruthTable want(n);
            for (std::size_t minterm = 0; minterm < want.n_minterms(); ++minterm) {
                std::uint64_t pins = 0;
                for (std::size_t k = 0; k < m.inputs.size(); ++k) {
                    if ((minterm >> pin_var[k]) & 1) pins |= std::uint64_t{1} << k;
                }
                if (gate.function.get(pins)) want.set(minterm, true);
            }
            ASSERT_EQ(val.at(v), want)
                << "gate " << gate.name << " at subject node " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherSoundness, ::testing::Values(101, 102, 103, 104));

// ------------------------------------------------------------ end to end

/// Full-pipeline equivalence across the whole (scaled) paper suite, both
/// pipelines, both objectives.
class SuiteEquivalence : public ::testing::TestWithParam<MapObjective> {};

TEST_P(SuiteEquivalence, BothPipelinesPreserveFunction) {
    const Library lib = load_msu_big();
    FlowOptions opts;
    opts.objective = GetParam();
    for (const Benchmark& b : paper_suite(0.2)) {
        const FlowResult base = run_baseline_flow(b.network, lib, opts);
        const FlowResult lily = run_lily_flow(b.network, lib, opts);
        EXPECT_TRUE(equivalent_random(b.network, base.netlist.to_network(lib), 4, 7)) << b.name;
        EXPECT_TRUE(equivalent_random(b.network, lily.netlist.to_network(lib), 4, 7)) << b.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Objectives, SuiteEquivalence,
                         ::testing::Values(MapObjective::Area, MapObjective::Delay),
                         [](const ::testing::TestParamInfo<MapObjective>& info) {
                             return info.param == MapObjective::Area ? "Area" : "Delay";
                         });

/// Cross matrix: decomposition shape x mapper x library, all equivalent.
struct MatrixCase {
    TreeShape shape;
    bool lily;
    bool big_lib;
};

class CrossMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CrossMatrix, MappedEquivalent) {
    const MatrixCase c = GetParam();
    const Library lib = c.big_lib ? load_msu_big() : load_msu_tiny();
    for (std::uint64_t seed = 200; seed < 204; ++seed) {
        const Network net = random_network(seed, 8, 50);
        DecomposeOptions dopts;
        dopts.shape = c.shape;
        if (c.shape == TreeShape::Proximity) {
            Rng rng(seed);
            dopts.source_positions.resize(net.node_count());
            for (auto& pt : dopts.source_positions) {
                pt = {rng.next_double(0, 50), rng.next_double(0, 50)};
            }
        }
        const DecomposeResult sub = decompose(net, dopts);
        MappedNetlist mapped;
        if (c.lily) {
            mapped = LilyMapper(lib).map(sub.graph).netlist;
        } else {
            mapped = BaseMapper(lib).map(sub.graph).netlist;
        }
        mapped.check(lib);
        EXPECT_TRUE(equivalent_random(net, mapped.to_network(lib), 4, seed)) << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossMatrix,
    ::testing::Values(MatrixCase{TreeShape::Balanced, false, true},
                      MatrixCase{TreeShape::Balanced, true, false},
                      MatrixCase{TreeShape::LeftDeep, false, false},
                      MatrixCase{TreeShape::LeftDeep, true, true},
                      MatrixCase{TreeShape::Proximity, true, true},
                      MatrixCase{TreeShape::Proximity, false, true}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
        std::string s2 = info.param.shape == TreeShape::Balanced    ? "Balanced"
                         : info.param.shape == TreeShape::LeftDeep ? "LeftDeep"
                                                                   : "Proximity";
        s2 += info.param.lily ? "Lily" : "Base";
        s2 += info.param.big_lib ? "Big" : "Tiny";
        return s2;
    });

TEST(FlowProperties, Deterministic) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    const FlowResult a = run_lily_flow(net, lib);
    const FlowResult b = run_lily_flow(net, lib);
    EXPECT_EQ(a.metrics.gate_count, b.metrics.gate_count);
    EXPECT_DOUBLE_EQ(a.metrics.wirelength, b.metrics.wirelength);
    EXPECT_DOUBLE_EQ(a.metrics.critical_delay, b.metrics.critical_delay);
}

TEST(FlowProperties, AdaptiveNeverWorseThanPlain) {
    const Library lib = load_msu_big();
    for (const Benchmark& b : paper_suite(0.25)) {
        if (b.network.logic_node_count() > 250) continue;
        const FlowResult base = run_baseline_flow(b.network, lib);
        const FlowResult plain = run_lily_flow(b.network, lib);
        const FlowResult tuned =
            run_lily_flow_adaptive(b.network, lib, {}, base.metrics.wirelength);
        EXPECT_LE(tuned.metrics.wirelength, plain.metrics.wirelength + 1e-9) << b.name;
        EXPECT_TRUE(equivalent_random(b.network, tuned.netlist.to_network(lib), 4, 3))
            << b.name;
    }
}

TEST(FlowProperties, MetricsAreConsistent) {
    const Library lib = load_msu_big();
    const Network net = make_alu(6, false);
    for (const auto& res : {run_baseline_flow(net, lib), run_lily_flow(net, lib)}) {
        EXPECT_GT(res.metrics.gate_count, 0u);
        EXPECT_GT(res.metrics.cell_area, 0.0);
        EXPECT_GE(res.metrics.chip_area, res.metrics.cell_area);
        EXPECT_GT(res.metrics.wirelength, 0.0);
        EXPECT_EQ(res.final_positions.size(), res.metrics.gate_count);
        // Rows can exceed nominal capacity by at most one cell, so allow a
        // one-cell margin around the region.
        Rect grown = res.region;
        const double margin = res.region.width() * 0.05;
        grown.ll.x -= margin;
        grown.ll.y -= margin;
        grown.ur.x += margin;
        grown.ur.y += margin;
        for (const Point& p : res.final_positions) EXPECT_TRUE(grown.contains(p));
    }
}

// -------------------------------------------------------- library on disk

TEST(LibraryFiles, BundledGenlibFilesMatchEmbedded) {
    // lib/*.genlib are generated from the embedded strings; parsing them
    // must produce identical libraries (guards against drift).
    for (const auto& [path, embedded] :
         {std::pair<const char*, std::string_view>{"msu_tiny.genlib", msu_tiny_genlib()},
          {"msu_big.genlib", msu_big_genlib()}}) {
        const std::string full = std::string(LILY_SOURCE_DIR) + "/lib/" + path;
        std::ifstream in(full);
        if (!in) GTEST_SKIP() << "library file not present: " << full;
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const Library from_file = read_genlib(text, path);
        const Library from_mem = read_genlib(embedded, path);
        ASSERT_EQ(from_file.size(), from_mem.size()) << path;
        for (GateId g = 0; g < from_file.size(); ++g) {
            EXPECT_EQ(from_file.gate(g).name, from_mem.gate(g).name);
            EXPECT_DOUBLE_EQ(from_file.gate(g).area, from_mem.gate(g).area);
            EXPECT_EQ(from_file.gate(g).function, from_mem.gate(g).function);
        }
    }
}

TEST(BlifFiles, DiskRoundTrip) {
    const Network net = make_priority_controller(9);
    const std::string path = ::testing::TempDir() + "/lily_roundtrip.blif";
    write_blif_file(net, path);
    const Network back = read_blif_file(path);
    EXPECT_TRUE(equivalent_random(net, back, 8, 13));
    EXPECT_THROW(read_blif_file(path + ".missing"), std::runtime_error);
}

TEST(BlifFiles, MappedNetlistRoundTrip) {
    // Map, dump as BLIF, re-read, re-map: the full downstream-user loop.
    const Library lib = load_msu_big();
    const Network net = make_alu(4, false);
    const DecomposeResult sub = decompose(net);
    const LilyResult res = LilyMapper(lib).map(sub.graph);
    const std::string path = ::testing::TempDir() + "/lily_mapped.blif";
    write_blif_file(res.netlist.to_network(lib, "mapped"), path);
    const Network back = read_blif_file(path);
    EXPECT_TRUE(equivalent_random(net, back, 8, 17));
    const DecomposeResult sub2 = decompose(back);
    const LilyResult res2 = LilyMapper(lib).map(sub2.graph);
    EXPECT_TRUE(equivalent_random(net, res2.netlist.to_network(lib), 8, 19));
}

}  // namespace
}  // namespace lily
