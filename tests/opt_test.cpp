#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "netlist/simulate.hpp"
#include "opt/optimize.hpp"
#include "opt/sop_algebra.hpp"

namespace lily {
namespace {

using alg::ACube;
using alg::ASop;
using alg::Lit;

Lit L(unsigned var, bool neg = false) { return alg::make_lit(var, neg); }

// ----------------------------------------------------------------- algebra

TEST(Algebra, NormalizeSortsAndDedupes) {
    ASop f = {{L(2), L(0)}, {L(1)}, {L(0), L(2)}};
    const ASop n = alg::normalized(std::move(f));
    ASSERT_EQ(n.size(), 2u);
    // Lexicographic cube order: {L(0), L(2)} sorts before {L(1)}.
    EXPECT_EQ(n[0], (ACube{L(0), L(2)}));
    EXPECT_EQ(n[1], (ACube{L(1)}));
    EXPECT_EQ(alg::literal_count(n), 3u);
}

TEST(Algebra, CubeOps) {
    const ACube big{L(0), L(1), L(3)};
    const ACube small{L(0), L(3)};
    EXPECT_TRUE(alg::cube_contains(big, small));
    EXPECT_FALSE(alg::cube_contains(small, big));
    EXPECT_EQ(alg::cube_remove(big, small), (ACube{L(1)}));
}

TEST(Algebra, CommonCubeAndCubeFree) {
    // f = abc + abd: common cube ab, not cube-free.
    const ASop f = alg::normalized({{L(0), L(1), L(2)}, {L(0), L(1), L(3)}});
    EXPECT_EQ(alg::common_cube(f), (ACube{L(0), L(1)}));
    EXPECT_FALSE(alg::is_cube_free(f));
    // c + d is cube-free.
    EXPECT_TRUE(alg::is_cube_free(alg::normalized({{L(2)}, {L(3)}})));
    // A single cube is never cube-free.
    EXPECT_FALSE(alg::is_cube_free({{L(2)}}));
}

TEST(Algebra, DivisionTextbook) {
    // f = ac + ad + bc + bd + e; d = a + b -> q = c + d, r = e.
    const ASop f = alg::normalized(
        {{L(0), L(2)}, {L(0), L(3)}, {L(1), L(2)}, {L(1), L(3)}, {L(4)}});
    const ASop d = alg::normalized({{L(0)}, {L(1)}});
    const auto res = alg::divide(f, d);
    EXPECT_EQ(res.quotient, alg::normalized({{L(2)}, {L(3)}}));
    EXPECT_EQ(res.remainder, alg::normalized({{L(4)}}));
    // Reconstruction: q*d + r == f.
    EXPECT_EQ(alg::add(alg::multiply(res.quotient, d), res.remainder), f);
}

TEST(Algebra, DivisionNoQuotient) {
    const ASop f = alg::normalized({{L(0), L(2)}});
    const auto res = alg::divide(f, alg::normalized({{L(5)}}));
    EXPECT_TRUE(res.quotient.empty());
    EXPECT_EQ(res.remainder, f);
}

TEST(Algebra, MultiplyDistributes) {
    const ASop a = alg::normalized({{L(0)}, {L(1)}});
    const ASop b = alg::normalized({{L(2)}, {L(3)}});
    const ASop p = alg::multiply(a, b);
    EXPECT_EQ(p, alg::normalized({{L(0), L(2)}, {L(0), L(3)}, {L(1), L(2)}, {L(1), L(3)}}));
}

TEST(Algebra, KernelsTextbook) {
    // The classic example f = adf + aef + bdf + bef + cdf + cef + g:
    // kernels include (a+b+c), (d+e), and f itself.
    const auto lit = [](char c) { return L(static_cast<unsigned>(c - 'a')); };
    ASop f;
    for (const char x : {'a', 'b', 'c'}) {
        for (const char y : {'d', 'e'}) {
            f.push_back({lit(x), lit(y), lit('f')});
        }
    }
    f.push_back({lit('g')});
    f = alg::normalized(std::move(f));

    const auto ks = alg::kernels(f);
    const ASop k_abc = alg::normalized({{lit('a')}, {lit('b')}, {lit('c')}});
    const ASop k_de = alg::normalized({{lit('d')}, {lit('e')}});
    bool saw_abc = false, saw_de = false, saw_self = false;
    for (const auto& k : ks) {
        if (k.kernel == k_abc) saw_abc = true;
        if (k.kernel == k_de) saw_de = true;
        if (k.kernel == f) saw_self = true;
        // Every kernel is cube-free with >= 2 cubes.
        EXPECT_TRUE(alg::common_cube(k.kernel).empty());
        EXPECT_GE(k.kernel.size(), 2u);
    }
    EXPECT_TRUE(saw_abc);
    EXPECT_TRUE(saw_de);
    EXPECT_TRUE(saw_self);  // f is cube-free (g has no common literal)

    // Level-0 call returns a subset.
    const auto k0 = alg::level0_kernels(f);
    EXPECT_LE(k0.size(), ks.size());
    EXPECT_FALSE(k0.empty());
}

TEST(Algebra, KernelCoKernelConsistency) {
    // For every (co-kernel, kernel) pair: dividing f by the kernel yields a
    // quotient containing the co-kernel.
    const ASop f = alg::normalized({{L(0), L(2)},
                                    {L(0), L(3)},
                                    {L(1), L(2)},
                                    {L(1), L(3)},
                                    {L(0), L(4)}});
    for (const auto& k : alg::kernels(f)) {
        const auto res = alg::divide(f, k.kernel);
        ASSERT_FALSE(res.quotient.empty());
        if (!k.co_kernel.empty()) {
            EXPECT_TRUE(std::binary_search(res.quotient.begin(), res.quotient.end(),
                                           k.co_kernel));
        }
    }
}

// ------------------------------------------------------------------ passes

TEST(Optimize, ConstantsPropagate) {
    Network net("c");
    const NodeId a = net.add_input("a");
    const NodeId one = net.make_const(true);
    const NodeId g = net.make_and2(a, one);      // = a
    const NodeId h = net.make_nor(std::array{g, net.make_const(false)});  // = !a
    net.add_output("f", h);
    std::size_t folded = 0;
    const Network out = propagate_constants(net, &folded);
    EXPECT_TRUE(equivalent_random(net, out, 8, 1));
    // g reduces to a buffer of a; h to an inverter; constants swept.
    for (NodeId i = 0; i < out.node_count(); ++i) {
        if (out.node(i).kind == NodeKind::Logic) {
            EXPECT_FALSE(out.node(i).function.is_constant());
        }
    }
}

TEST(Optimize, ConstantOutputsSurvive) {
    Network net("co");
    net.add_input("a");
    net.add_output("zero", net.make_const(false));
    const Network out = propagate_constants(net);
    ASSERT_EQ(out.outputs().size(), 1u);
    EXPECT_TRUE(out.node(out.outputs()[0].driver).function.is_constant());
}

TEST(Optimize, BuffersCollapse) {
    Network net("b");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    NodeId s = net.make_and2(a, b);
    for (int i = 0; i < 4; ++i) s = net.make_buf(s);
    net.add_output("f", s);
    std::size_t removed = 0;
    const Network out = collapse_buffers(net, &removed);
    EXPECT_EQ(removed, 4u);
    EXPECT_EQ(out.logic_node_count(), 1u);
    EXPECT_TRUE(equivalent_random(net, out, 8, 2));
}

TEST(Optimize, CubeExtractionShares) {
    // Three nodes all containing the product a*b: one extraction expected.
    Network net("cx");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    const NodeId d = net.add_input("d");
    net.add_output("f", net.make_and(std::array{a, b, c}));
    net.add_output("g", net.make_and(std::array{a, b, d}));
    const NodeId ab_or = net.add_node("h", {a, b, c, d}, [] {
        Sop s;
        Cube c1;  // a b d
        c1.care = 0b1011;
        c1.polarity = 0b1011;
        Cube c2;  // c
        c2.care = 0b0100;
        c2.polarity = 0b0100;
        s.cubes = {c1, c2};
        return s;
    }());
    net.add_output("h", ab_or);
    std::size_t made = 0;
    const Network out = extract_common_cubes(net, 10, &made);
    EXPECT_GE(made, 1u);
    EXPECT_TRUE(equivalent_random(net, out, 16, 3));
    EXPECT_LT(out.literal_count(), net.literal_count());
}

TEST(Optimize, KernelExtractionShares) {
    // f = xe + ye, g = xh + yh share the kernel (x + y).
    Network net("kx");
    const NodeId x = net.add_input("x");
    const NodeId y = net.add_input("y");
    const NodeId e = net.add_input("e");
    const NodeId h = net.add_input("h");
    const auto sop2 = [](unsigned other) {
        Sop s;
        Cube c1;  // x * other
        c1.care = 0b001 | (1u << other);
        c1.polarity = c1.care;
        Cube c2;  // y * other
        c2.care = 0b010 | (1u << other);
        c2.polarity = c2.care;
        s.cubes = {c1, c2};
        return s;
    };
    net.add_output("f", net.add_node("f", {x, y, e}, sop2(2)));
    net.add_output("g", net.add_node("g", {x, y, h}, sop2(2)));
    std::size_t made = 0;
    const Network out = extract_common_kernels(net, 10, &made);
    EXPECT_GE(made, 1u);
    EXPECT_TRUE(equivalent_random(net, out, 16, 4));
    // The kernel node exists and the originals reference it.
    EXPECT_GT(out.logic_node_count(), 2u);
}

TEST(Optimize, FactoringBoundsCubeCount) {
    const Network pla = make_pla(16, 6, 60, 9, "fx");
    const Network out = factor_wide_nodes(pla, 4);
    for (NodeId i = 0; i < out.node_count(); ++i) {
        if (out.node(i).kind == NodeKind::Logic) {
            EXPECT_LE(out.node(i).function.cubes.size(), 4u);
        }
    }
    EXPECT_TRUE(equivalent_random(pla, out, 8, 5));
    EXPECT_THROW(factor_wide_nodes(pla, 1), std::invalid_argument);
}

class OptimizeSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizeSuite, FullScriptEquivalentAndSmaller) {
    const auto suite = paper_suite(0.3);
    const auto it = std::find_if(suite.begin(), suite.end(), [&](const Benchmark& b) {
        return b.name == GetParam();
    });
    ASSERT_NE(it, suite.end());
    OptimizeStats stats;
    const Network out = optimize(it->network, {}, &stats);
    EXPECT_TRUE(equivalent_random(it->network, out, 8, 6)) << GetParam();
    EXPECT_EQ(stats.literals_before, it->network.literal_count());
    EXPECT_EQ(stats.literals_after, out.literal_count());
    // PLA-style circuits must shrink; others must not blow up.
    EXPECT_LE(stats.literals_after, stats.literals_before * 11 / 10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, OptimizeSuite,
                         ::testing::Values("duke2", "misex1", "e64", "b9", "C880", "9symml"));

TEST(Optimize, PlaLiteralsShrinkSubstantially) {
    const Network pla = make_pla(20, 10, 80, 11, "shrink");
    OptimizeStats stats;
    const Network out = optimize(pla, {}, &stats);
    EXPECT_TRUE(equivalent_random(pla, out, 8, 7));
    EXPECT_LT(stats.literals_after, stats.literals_before);
    EXPECT_GT(stats.cubes_extracted + stats.kernels_extracted, 0u);
}

TEST(Optimize, Deterministic) {
    const Network pla = make_pla(14, 8, 50, 13, "det");
    const Network a = optimize(pla);
    const Network b = optimize(pla);
    EXPECT_EQ(a.node_count(), b.node_count());
    EXPECT_EQ(a.literal_count(), b.literal_count());
    EXPECT_TRUE(equivalent_random(a, b, 4, 8));
}

}  // namespace
}  // namespace lily
