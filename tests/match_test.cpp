#include <gtest/gtest.h>

#include "library/standard_cells.hpp"
#include "match/matcher.hpp"
#include "subject/decompose.hpp"

namespace lily {
namespace {

struct Fixture {
    Library lib = load_msu_big();
    SubjectGraph g;
    Matcher matcher{lib};
};

TEST(Matcher, InputHasNoMatches) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    EXPECT_TRUE(f.matcher.matches_at(f.g, a).empty());
}

TEST(Matcher, InverterMatchesInvGates) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId i = f.g.add_inv(a);
    const auto ms = f.matcher.matches_at(f.g, i);
    // inv1 and inv2 both match; nothing else has a 1-node INV pattern root
    // reachable from a bare inverter.
    ASSERT_GE(ms.size(), 2u);
    for (const Match& m : ms) {
        EXPECT_EQ(f.lib.gate(m.gate).n_inputs(), 1u);
        ASSERT_EQ(m.inputs.size(), 1u);
        EXPECT_EQ(m.inputs[0], a);
        EXPECT_EQ(m.root(), i);
    }
}

TEST(Matcher, NandTreeMatchesNand2AndLarger) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId b = f.g.add_input("b", 1);
    const SubjectId c = f.g.add_input("c", 2);
    // NAND3 structure: NAND(a, INV(NAND(b, c))).
    const SubjectId bc = f.g.add_nand(b, c);
    const SubjectId inv_bc = f.g.add_inv(bc);
    const SubjectId root = f.g.add_nand(a, inv_bc);

    const auto ms = f.matcher.matches_at(f.g, root);
    bool saw_nand2 = false, saw_nand3 = false;
    for (const Match& m : ms) {
        const std::string& name = f.lib.gate(m.gate).name;
        if (name == "nand2") {
            saw_nand2 = true;
            // Inputs: a and inv_bc, in some pin order.
            EXPECT_EQ(m.inputs.size(), 2u);
            EXPECT_EQ(m.covered.size(), 1u);
        }
        if (name == "nand3") {
            saw_nand3 = true;
            EXPECT_EQ(m.covered.size(), 3u);
            // Leaves are exactly {a, b, c}.
            auto ins = m.inputs;
            std::sort(ins.begin(), ins.end());
            EXPECT_EQ(ins, (std::vector<SubjectId>{a, b, c}));
        }
    }
    EXPECT_TRUE(saw_nand2);
    EXPECT_TRUE(saw_nand3);
}

TEST(Matcher, And2MatchesInvOverNand) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId b = f.g.add_input("b", 1);
    const SubjectId n = f.g.add_nand(a, b);
    const SubjectId i = f.g.add_inv(n);
    const auto ms = f.matcher.matches_at(f.g, i);
    bool saw_and2 = false;
    for (const Match& m : ms) {
        if (f.lib.gate(m.gate).name == "and2") {
            saw_and2 = true;
            EXPECT_EQ(m.covered.size(), 2u);
        }
    }
    EXPECT_TRUE(saw_and2);
}

TEST(Matcher, XorRequiresConsistentLeafBinding) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId b = f.g.add_input("b", 1);
    // XOR(a,b) = NAND(NAND(a, INV(b)), NAND(INV(a), b)).
    const SubjectId na = f.g.add_inv(a);
    const SubjectId nb = f.g.add_inv(b);
    const SubjectId t1 = f.g.add_nand(a, nb);
    const SubjectId t2 = f.g.add_nand(na, b);
    const SubjectId x = f.g.add_nand(t1, t2);
    const auto ms = f.matcher.matches_at(f.g, x);
    bool saw_xor = false;
    for (const Match& m : ms) {
        if (f.lib.gate(m.gate).name == "xor2") {
            saw_xor = true;
            auto ins = m.inputs;
            std::sort(ins.begin(), ins.end());
            EXPECT_EQ(ins, (std::vector<SubjectId>{a, b}));
        }
    }
    EXPECT_TRUE(saw_xor);

    // Break the sharing: use a third input where consistency demands `a`;
    // the xor2 pattern must then NOT match.
    const SubjectId c = f.g.add_input("c", 2);
    const SubjectId nc = f.g.add_inv(c);
    const SubjectId t3 = f.g.add_nand(nc, b);  // NAND(!c, b)
    const SubjectId y = f.g.add_nand(t1, t3);
    for (const Match& m : f.matcher.matches_at(f.g, y)) {
        EXPECT_NE(f.lib.gate(m.gate).name, "xor2");
        EXPECT_NE(f.lib.gate(m.gate).name, "xnor2");
    }
}

TEST(Matcher, MatchInputsNeverInsideCover) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId b = f.g.add_input("b", 1);
    const SubjectId n1 = f.g.add_nand(a, b);
    const SubjectId i1 = f.g.add_inv(n1);
    const SubjectId n2 = f.g.add_nand(i1, a);
    for (const Match& m : f.matcher.matches_at(f.g, n2)) {
        for (SubjectId in : m.inputs) {
            EXPECT_FALSE(std::binary_search(m.covered.begin(), m.covered.end(), in));
        }
    }
}

TEST(Matcher, EveryGateNodeHasAtLeastBaseMatch) {
    // Random-ish structure; every Inv/Nand2 node must match at least inv1
    // or nand2 respectively.
    Fixture f;
    std::vector<SubjectId> pool;
    for (int i = 0; i < 4; ++i) pool.push_back(f.g.add_input("i" + std::to_string(i), i));
    for (int i = 0; i < 30; ++i) {
        const SubjectId x = pool[static_cast<std::size_t>(i * 7 % pool.size())];
        const SubjectId y = pool[static_cast<std::size_t>((i * 13 + 1) % pool.size())];
        pool.push_back(i % 3 == 0 ? f.g.add_inv(x) : f.g.add_nand(x, y));
    }
    for (SubjectId v = 0; v < f.g.size(); ++v) {
        if (f.g.node(v).kind == SubjectKind::Input) continue;
        EXPECT_FALSE(f.matcher.matches_at(f.g, v).empty()) << v;
    }
}

TEST(Matcher, CoveredSetTopologicalRootLast) {
    Fixture f;
    const SubjectId a = f.g.add_input("a", 0);
    const SubjectId b = f.g.add_input("b", 1);
    const SubjectId c = f.g.add_input("c", 2);
    const SubjectId d = f.g.add_input("d", 3);
    // aoi22 structure: INV? aoi22 = !(ab+cd) = NAND(INV(NAND(a,b))... no:
    // !(ab+cd) = NAND(ab, cd)... via OR decomposition: NAND(x,y) with
    // x = INV(ab')? Use the generated library pattern by building
    // AND(a,b), AND(c,d), NOR: !(p+q) = INV(NAND(INV p, INV q))... Simplest:
    // build INV(NAND(INV(NAND(a,b)), INV(NAND(c,d)))) ... that's and4.
    const SubjectId ab = f.g.add_nand(a, b);    // = !(ab)
    const SubjectId cd = f.g.add_nand(c, d);    // = !(cd)
    const SubjectId iab = f.g.add_inv(ab);      // = ab
    const SubjectId icd = f.g.add_inv(cd);      // = cd
    const SubjectId root = f.g.add_nand(iab, icd);  // = !(ab*cd)? No: NAND(ab,cd) = !(ab cd)
    for (const Match& m : f.matcher.matches_at(f.g, root)) {
        EXPECT_TRUE(std::is_sorted(m.covered.begin(), m.covered.end()));
        EXPECT_EQ(m.covered.back(), root);
    }
}

TEST(Matcher, SubjectFromDecompositionAlwaysCoverable) {
    Network net("n");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    std::vector<NodeId> ins{a, b, c};
    const NodeId g1 = net.make_xor(ins);
    const NodeId g2 = net.make_nand(ins);
    net.add_output("x", g1);
    net.add_output("y", g2);
    const DecomposeResult r = decompose(net);
    Fixture f;
    for (SubjectId v = 0; v < r.graph.size(); ++v) {
        if (r.graph.node(v).kind == SubjectKind::Input) continue;
        EXPECT_FALSE(f.matcher.matches_at(r.graph, v).empty());
    }
}

}  // namespace
}  // namespace lily
