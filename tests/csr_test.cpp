// Tests for the flat-adjacency (CSR) machinery and the rewritten CG kernel:
//  * Csr builder + Arena unit behaviour;
//  * property tests that the frozen Network/SubjectGraph topology views
//    agree edge-for-edge with the pointer-based adjacency, across random
//    ECO deltas (staleness is the bug class: a view that survives a
//    mutation it should not);
//  * CG solver: Jacobi-preconditioned and (diagonally pre-scaled, i.e.
//    effectively unpreconditioned) solves reach the same fixed point; a
//    warm workspace is allocation-free and bit-identical to a cold one;
//    thread count does not change a single output bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "netlist/delta.hpp"
#include "netlist/network.hpp"
#include "subject/decompose.hpp"
#include "subject/subject_graph.hpp"
#include "util/alloc_stats.hpp"
#include "util/csr.hpp"
#include "util/parallel.hpp"
#include "util/sparse.hpp"

namespace lily {
namespace {

// ---- Csr / Arena units -------------------------------------------------

TEST(Csr, CountedBuildPreservesPerSourceOrder) {
    // 0 -> {2, 1}, 1 -> {}, 2 -> {0}
    const std::vector<std::pair<std::size_t, int>> edges = {{0, 2}, {0, 1}, {2, 0}};
    const auto c = Csr<int>::counted(
        3,
        [&](std::size_t i) {
            std::uint32_t d = 0;
            for (const auto& [s, t] : edges) d += (s == i) ? 1 : 0;
            return d;
        },
        [&](auto emit) {
            for (const auto& [s, t] : edges) emit(s, t);
        });
    EXPECT_EQ(c.node_count(), 3u);
    EXPECT_EQ(c.edge_count(), 3u);
    ASSERT_EQ(c.degree(0), 2u);
    EXPECT_EQ(c.neighbors(0)[0], 2);
    EXPECT_EQ(c.neighbors(0)[1], 1);
    EXPECT_TRUE(c.neighbors(1).empty());
    ASSERT_EQ(c.degree(2), 1u);
    EXPECT_EQ(c.neighbors(2)[0], 0);
}

TEST(Csr, EmptyGraph) {
    const auto c = Csr<int>::counted(
        0, [](std::size_t) { return 0u; }, [](auto) {});
    EXPECT_EQ(c.node_count(), 0u);
    EXPECT_EQ(c.edge_count(), 0u);
}

TEST(Arena, ResetRetainsBlocksAndAllocatesNothing) {
    Arena a(1 << 12);
    for (int round = 0; round < 3; ++round) {
        a.reset();
        const AllocStats before = alloc_stats_snapshot();
        for (int i = 0; i < 64; ++i) {
            std::span<std::uint64_t> s = a.make_span<std::uint64_t>(32);
            s[0] = static_cast<std::uint64_t>(i);
            EXPECT_EQ(s.size(), 32u);
        }
        if (round > 0) {
            // Warmed arena: every block already exists.
            EXPECT_EQ(alloc_stats_snapshot().count, before.count);
        }
    }
}

TEST(Arena, AlignmentHonored) {
    Arena a;
    a.allocate<char>(1);
    double* d = a.allocate<double>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

// ---- Topology-view property tests --------------------------------------

std::vector<NodeId> sorted(std::span<const NodeId> s) {
    std::vector<NodeId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
}

/// The frozen view must agree edge-for-edge with the pointer adjacency.
/// Fanins are order-sensitive (SOP literals index them); fanouts are a set.
void expect_topology_matches(const Network& net) {
    const NetworkTopology& t = net.topology();
    ASSERT_EQ(t.size(), net.node_count());
    for (NodeId v = 0; v < net.node_count(); ++v) {
        const Node& n = net.node(v);
        const std::span<const NodeId> fi = t.fanins_of(v);
        ASSERT_EQ(fi.size(), n.fanins.size()) << "node " << v;
        for (std::size_t i = 0; i < fi.size(); ++i) {
            EXPECT_EQ(fi[i], n.fanins[i]) << "node " << v << " fanin " << i;
        }
        EXPECT_EQ(sorted(t.fanouts_of(v)), sorted(n.fanouts)) << "node " << v;
    }
}

TEST(NetworkTopology, AgreesWithPointerAdjacencyAcrossRandomDeltas) {
    Network net = make_control_logic(24, 12, 150, 0xC5A1, "csr_prop");
    expect_topology_matches(net);
    for (std::uint64_t round = 0; round < 8; ++round) {
        const NetDelta delta = random_delta(net, 5, 0x1000 + round);
        const StatusOr<AppliedDelta> applied = net.apply_delta(delta);
        ASSERT_TRUE(applied.is_ok()) << applied.status().to_string();
        // The delta mutated adjacency; a stale frozen view here is exactly
        // the bug this test exists to catch.
        expect_topology_matches(net);
    }
}

TEST(NetworkTopology, RebuildOnlyWhenStructureChanges) {
    Network net = make_control_logic(8, 4, 40, 0xBEE, "csr_vers");
    const Version v0 = net.struct_version();
    const NetworkTopology* t0 = &net.topology();
    // Repeated reads of an unchanged graph return the same frozen view.
    EXPECT_EQ(t0, &net.topology());
    EXPECT_EQ(net.struct_version(), v0);
    const NetDelta delta = random_delta(net, 2, 99);
    ASSERT_TRUE(net.apply_delta(delta).is_ok());
    EXPECT_NE(net.struct_version(), v0);
    expect_topology_matches(net);
}

TEST(SubjectTopology, AgreesWithPointerAdjacency) {
    const Network net = make_control_logic(24, 12, 200, 0x5AB2, "csr_subj");
    const DecomposeResult dec = decompose(net);
    const SubjectGraph& g = dec.graph;
    const SubjectTopology& t = g.topology();
    ASSERT_EQ(t.size(), g.size());
    for (SubjectId v = 0; v < g.size(); ++v) {
        const SubjectNode& n = g.node(v);
        EXPECT_EQ(t.kind[v], n.kind);
        EXPECT_EQ(t.fanin0[v], n.fanin0);
        EXPECT_EQ(t.fanin1[v], n.fanin1);
        const std::span<const SubjectId> fo = t.fanouts_of(v);
        ASSERT_EQ(fo.size(), n.fanouts.size()) << "node " << v;
        std::vector<SubjectId> a(fo.begin(), fo.end());
        std::vector<SubjectId> b(n.fanouts.begin(), n.fanouts.end());
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b) << "node " << v;
    }
}

TEST(SubjectTopology, InvalidatedByAppendedNodes) {
    SubjectGraph g("grow");
    const SubjectId a = g.add_input("a", 0);
    const SubjectId b = g.add_input("b", 1);
    const SubjectId n1 = g.add_nand(a, b);
    g.add_output("o", n1);
    const SubjectTopology& t1 = g.topology();
    EXPECT_EQ(t1.size(), 3u);
    EXPECT_EQ(t1.fanouts_of(a).size(), 1u);
    // Appending (the ECO path) must invalidate the frozen view.
    const SubjectId n2 = g.add_nand(n1, a);
    g.add_output("o2", n2);
    const SubjectTopology& t2 = g.topology();
    EXPECT_EQ(t2.size(), 4u);
    EXPECT_EQ(t2.fanouts_of(a).size(), 2u);
    EXPECT_EQ(t2.fanouts_of(n1).size(), 1u);
    EXPECT_EQ(t2.fanouts_of(n1)[0], n2);
}

// ---- CG solver ---------------------------------------------------------

/// Anchored 1-D chain Laplacian with spring weights w[i] between i and i+1
/// and an anchor at both ends: SPD, condition number grows with n.
SparseMatrix make_chain(const std::vector<double>& w) {
    const std::size_t n = w.size() + 1;
    SparseMatrix::Builder b(n);
    for (std::size_t i = 0; i + 1 < n; ++i) b.add_spring(i, i + 1, w[i]);
    b.add_anchor(0, 1.0);
    b.add_anchor(n - 1, 1.0);
    return std::move(b).build();
}

std::vector<double> chain_weights(std::size_t springs) {
    std::vector<double> w(springs);
    for (std::size_t i = 0; i < springs; ++i) {
        // Wildly varying stiffness: the case Jacobi preconditioning exists
        // for.
        w[i] = (i % 3 == 0) ? 100.0 : (i % 3 == 1 ? 1.0 : 0.01);
    }
    return w;
}

TEST(ConjugateGradient, PreconditionedAndPrescaledAgreeOnFixedPoint) {
    // The solver always applies Jacobi preconditioning. Solving the
    // symmetrically pre-scaled system D^-1/2 A D^-1/2 y = D^-1/2 b instead
    // makes that preconditioner the identity — i.e. an unpreconditioned CG
    // on the original problem. Both must converge to the same fixed point
    // x = D^-1/2 y (up to the solve tolerance).
    const std::vector<double> w = chain_weights(63);
    const SparseMatrix a = make_chain(w);
    const std::size_t n = a.size();
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(0.37 * static_cast<double>(i));

    std::vector<double> x(n, 0.0);
    const CgResult direct = conjugate_gradient(a, b, x, 1e-12, 100'000);
    ASSERT_TRUE(direct.converged);

    std::vector<double> dinv_sqrt(n);
    for (std::size_t i = 0; i < n; ++i) dinv_sqrt[i] = 1.0 / std::sqrt(a.diagonal(i));
    SparseMatrix::Builder sb(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double off = -w[i] * dinv_sqrt[i] * dinv_sqrt[i + 1];
        sb.add(i, i + 1, off);
        sb.add(i + 1, i, off);
    }
    for (std::size_t i = 0; i < n; ++i) sb.add(i, i, 1.0);  // scaled diagonal
    const SparseMatrix a_scaled = std::move(sb).build();
    std::vector<double> b_scaled(n), y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) b_scaled[i] = b[i] * dinv_sqrt[i];
    const CgResult scaled = conjugate_gradient(a_scaled, b_scaled, y, 1e-12, 100'000);
    ASSERT_TRUE(scaled.converged);

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], y[i] * dinv_sqrt[i], 1e-7) << "component " << i;
    }
}

TEST(ConjugateGradient, JacobiConvergesNoSlowerOnIllScaledSystem) {
    // On the badly scaled chain, the identity-diagonal (pre-scaled) solve
    // is the unpreconditioned iteration count; the Jacobi solve must not
    // need more iterations than twice that (in practice it needs far
    // fewer — this guards against the preconditioner being dropped).
    const std::vector<double> w = chain_weights(127);
    const SparseMatrix a = make_chain(w);
    const std::size_t n = a.size();
    std::vector<double> b(n, 1.0), x(n, 0.0);
    const CgResult jacobi = conjugate_gradient(a, b, x, 1e-10, 100'000);
    ASSERT_TRUE(jacobi.converged);
    EXPECT_LE(jacobi.iterations, 4 * n);
}

TEST(ConjugateGradient, WarmWorkspaceIsAllocationFreeAndBitIdentical) {
    const std::vector<double> w = chain_weights(255);
    const SparseMatrix a = make_chain(w);
    const std::size_t n = a.size();
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(0.11 * static_cast<double>(i));

    std::vector<double> x_cold(n, 0.0);
    const CgResult cold = conjugate_gradient(a, b, x_cold, 1e-11, 100'000);
    ASSERT_TRUE(cold.converged);

    CgWorkspace ws;
    std::vector<double> x_warmup(n, 0.0);
    conjugate_gradient(a, b, x_warmup, ws, 1e-11, 100'000);
    std::vector<double> x_warm(n, 0.0);
    const AllocStats before = alloc_stats_snapshot();
    const CgResult warm = conjugate_gradient(a, b, x_warm, ws, 1e-11, 100'000);
    const AllocStats after = alloc_stats_snapshot();
    ASSERT_TRUE(warm.converged);
    EXPECT_EQ(after.count, before.count) << "warm CG solve allocated";
    EXPECT_EQ(warm.iterations, cold.iterations);
    for (std::size_t i = 0; i < n; ++i) {
        // Bit identity, not tolerance: workspace reuse must not change the
        // arithmetic.
        EXPECT_EQ(x_cold[i], x_warm[i]) << "component " << i;
    }
}

TEST(ConjugateGradient, ThreadCountDoesNotChangeASingleBit) {
    const std::vector<double> w = chain_weights(511);
    const SparseMatrix a = make_chain(w);
    const std::size_t n = a.size();
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(0.53 * static_cast<double>(i));

    ThreadPool::global().resize(1);
    std::vector<double> x1(n, 0.0);
    const CgResult r1 = conjugate_gradient(a, b, x1, 1e-11, 100'000);
    ThreadPool::global().resize(8);
    std::vector<double> x8(n, 0.0);
    const CgResult r8 = conjugate_gradient(a, b, x8, 1e-11, 100'000);
    ThreadPool::global().resize(1);
    ASSERT_TRUE(r1.converged);
    ASSERT_TRUE(r8.converged);
    EXPECT_EQ(r1.iterations, r8.iterations);
    EXPECT_EQ(r1.residual_norm, r8.residual_norm);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x1[i], x8[i]) << "component " << i;
    }
}

TEST(ConjugateGradient, LockstepPairMatchesSequentialSolvesBitForBit) {
    // The placer solves x and y against the same Laplacian; the pair solver
    // shares the matrix stream but must reproduce each sequential solve's
    // exact bits — at any thread count, including sides that converge at
    // different iteration counts (the rhs below are unrelated, so they do).
    const std::vector<double> w = chain_weights(511);
    const SparseMatrix a = make_chain(w);
    const std::size_t n = a.size();
    std::vector<double> b1(n), b2(n);
    for (std::size_t i = 0; i < n; ++i) {
        b1[i] = std::sin(0.53 * static_cast<double>(i));
        b2[i] = std::cos(1.7 * static_cast<double>(i)) * 3.0;
    }

    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ThreadPool::global().resize(threads);
        std::vector<double> xs1(n, 0.0), xs2(n, 0.0);
        const CgResult s1 = conjugate_gradient(a, b1, xs1, 1e-11, 100'000);
        const CgResult s2 = conjugate_gradient(a, b2, xs2, 1e-11, 100'000);

        std::vector<double> xp1(n, 0.0), xp2(n, 0.0);
        CgWorkspace w1, w2;
        const auto [p1, p2] =
            conjugate_gradient_pair(a, b1, xp1, w1, b2, xp2, w2, 1e-11, 100'000);

        ASSERT_TRUE(p1.converged);
        ASSERT_TRUE(p2.converged);
        EXPECT_EQ(p1.iterations, s1.iterations);
        EXPECT_EQ(p2.iterations, s2.iterations);
        EXPECT_EQ(p1.residual_norm, s1.residual_norm);
        EXPECT_EQ(p2.residual_norm, s2.residual_norm);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(xs1[i], xp1[i]) << "axis 1 component " << i << " threads " << threads;
            EXPECT_EQ(xs2[i], xp2[i]) << "axis 2 component " << i << " threads " << threads;
        }
    }
    ThreadPool::global().resize(1);
}

}  // namespace
}  // namespace lily
