#include <gtest/gtest.h>

#include <array>

#include "library/standard_cells.hpp"
#include "map/base_mapper.hpp"
#include "place/netlist_adapters.hpp"
#include "place/placement.hpp"
#include "sta/timing.hpp"
#include "subject/decompose.hpp"
#include "util/rng.hpp"

namespace lily {
namespace {

struct Placed {
    Library lib = load_msu_big();
    MappedNetlist netlist;
    MappedPlacementView view;
    std::vector<Point> positions;
};

Placed map_and_place(const Network& net) {
    Placed out;
    const DecomposeResult r = decompose(net);
    const MapResult res = BaseMapper(out.lib).map(r.graph);
    out.netlist = res.netlist;
    out.view = make_placement_view(out.netlist, out.lib);
    const Rect region = make_region(out.view.netlist.total_cell_area());
    out.view.netlist.pad_positions =
        uniform_pad_ring(out.view.netlist.pad_positions.size(), region);
    const GlobalPlacement gp = place_global(out.view.netlist, region);
    out.positions = gp.positions;
    return out;
}

// ------------------------------------------------------------- net extents

TEST(NetExtents, SteinerSplitsAxes) {
    const std::array<Point, 2> pins{Point{0, 0}, Point{4, 3}};
    const NetExtents e = net_extents(pins, WireModel::SteinerHpwl);
    EXPECT_DOUBLE_EQ(e.x, 4.0);
    EXPECT_DOUBLE_EQ(e.y, 3.0);
}

TEST(NetExtents, SpanningTreeSumsEdges) {
    const std::array<Point, 3> pins{Point{0, 0}, Point{10, 0}, Point{10, 5}};
    const NetExtents e = net_extents(pins, WireModel::SpanningTree);
    EXPECT_DOUBLE_EQ(e.x, 10.0);
    EXPECT_DOUBLE_EQ(e.y, 5.0);
}

TEST(NetExtents, DegenerateNetZero) {
    const std::array<Point, 1> one{Point{2, 2}};
    const NetExtents e = net_extents(one, WireModel::SteinerHpwl);
    EXPECT_DOUBLE_EQ(e.x, 0.0);
    EXPECT_DOUBLE_EQ(e.y, 0.0);
}

// ------------------------------------------------------------------ timing

TEST(Timing, SingleInverterHandComputed) {
    Network net("inv");
    const NodeId a = net.add_input("a");
    net.add_output("f", net.make_not(a));
    Placed p = map_and_place(net);
    ASSERT_EQ(p.netlist.gate_count(), 1u);
    TimingOptions opts;
    opts.cap_per_unit_h = 0.0;  // isolate the gate model
    opts.cap_per_unit_v = 0.0;
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions, opts);
    const Gate& g = p.lib.gate(p.netlist.gates[0].gate);
    // Load = one output pad.
    EXPECT_NEAR(rep.load[0], opts.po_pad_load, 1e-12);
    const double want_rise = g.pin(0).rise_block + g.pin(0).rise_fanout * opts.po_pad_load;
    const double want_fall = g.pin(0).fall_block + g.pin(0).fall_fanout * opts.po_pad_load;
    EXPECT_NEAR(rep.arrival[0].rise, want_rise, 1e-12);
    EXPECT_NEAR(rep.arrival[0].fall, want_fall, 1e-12);
    EXPECT_NEAR(rep.critical_delay, std::max(want_rise, want_fall), 1e-12);
    EXPECT_EQ(rep.critical_output, "f");
    EXPECT_EQ(rep.critical_path.size(), 1u);
}

TEST(Timing, ChainArrivalAccumulates) {
    // NAND chain (inverter chains cancel structurally in the subject graph).
    Network net("chain");
    NodeId s = net.add_input("a");
    const NodeId b = net.add_input("b");
    for (int i = 0; i < 6; ++i) s = net.make_nand(std::array{s, b});
    net.add_output("f", s);
    Placed p = map_and_place(net);
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions);
    // Strictly increasing along the chain.
    double prev = 0.0;
    for (std::size_t i : rep.critical_path) {
        EXPECT_GT(rep.arrival[i].worst(), prev);
        prev = rep.arrival[i].worst();
    }
    EXPECT_GE(rep.critical_path.size(), 1u);
    EXPECT_NEAR(prev, rep.critical_delay, 1e-12);
}

TEST(Timing, WireCapacitanceIncreasesDelay) {
    Rng rng(12);
    Network net("w");
    std::vector<NodeId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 60; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_and2(a, b));
    }
    for (int i = 0; i < 4; ++i) net.add_output("o" + std::to_string(i),
                                               pool[pool.size() - 1 - i]);
    net.sweep();
    Placed p = map_and_place(net);
    TimingOptions no_wire;
    no_wire.cap_per_unit_h = 0.0;
    no_wire.cap_per_unit_v = 0.0;
    TimingOptions with_wire;  // defaults have nonzero c_h/c_v
    const TimingReport r0 = analyze_timing(p.netlist, p.lib, p.view, p.positions, no_wire);
    const TimingReport r1 = analyze_timing(p.netlist, p.lib, p.view, p.positions, with_wire);
    EXPECT_GT(r1.critical_delay, r0.critical_delay);
    for (std::size_t i = 0; i < p.netlist.gate_count(); ++i) {
        EXPECT_GE(r1.load[i] + 1e-12, r0.load[i]);
    }
}

TEST(Timing, InputArrivalShiftsEverything) {
    Network net("shift");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("f", net.make_and2(a, b));
    Placed p = map_and_place(net);
    TimingOptions base;
    TimingOptions shifted;
    shifted.input_arrival = 5.0;
    const TimingReport r0 = analyze_timing(p.netlist, p.lib, p.view, p.positions, base);
    const TimingReport r1 = analyze_timing(p.netlist, p.lib, p.view, p.positions, shifted);
    EXPECT_NEAR(r1.critical_delay - r0.critical_delay, 5.0, 1e-9);
}

TEST(Timing, InvPhaseSwapsRiseFall) {
    // Two stacked inverting stages: with INV pins the output rise comes
    // from the input fall; check the rise/fall bookkeeping stays sane.
    Network net("ph");
    NodeId s = net.add_input("a");
    const NodeId b = net.add_input("b");
    s = net.make_nand(std::array{s, b});
    s = net.make_nand(std::array{s, b});
    net.add_output("f", s);
    Placed p = map_and_place(net);
    TimingOptions opts;
    opts.cap_per_unit_h = 0.0;
    opts.cap_per_unit_v = 0.0;
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions, opts);
    // Both instances exist (inverter pair is not collapsed by mapping:
    // buf1 may replace them — accept either shape, just require a sane
    // positive critical delay).
    EXPECT_GT(rep.critical_delay, 0.0);
    EXPECT_LT(rep.critical_delay, 10.0);
}

TEST(Timing, CriticalPathIsConnected) {
    Rng rng(13);
    Network net("cp");
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 40; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_xor2(a, b));
    }
    net.add_output("o", pool.back());
    net.sweep();
    Placed p = map_and_place(net);
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions);
    ASSERT_FALSE(rep.critical_path.empty());
    // Consecutive path elements are driver/sink pairs.
    for (std::size_t k = 0; k + 1 < rep.critical_path.size(); ++k) {
        const GateInstance& sink = p.netlist.gates[rep.critical_path[k + 1]];
        const SubjectId driver_sig = p.netlist.gates[rep.critical_path[k]].driver;
        EXPECT_NE(std::find(sink.inputs.begin(), sink.inputs.end(), driver_sig),
                  sink.inputs.end());
    }
    // Path ends at the critical output's driver.
    const GateInstance& last = p.netlist.gates[rep.critical_path.back()];
    bool drives_po = false;
    for (const MappedOutput& po : p.netlist.outputs) {
        if (po.driver == last.driver && po.name == rep.critical_output) drives_po = true;
    }
    EXPECT_TRUE(drives_po);
}

TEST(Timing, SpanningTreeModelNoLessLoadThanHpwl) {
    Rng rng(14);
    Network net("wm");
    std::vector<NodeId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 50; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_or2(a, b));
    }
    for (int i = 0; i < 3; ++i) net.add_output("o" + std::to_string(i),
                                               pool[pool.size() - 1 - i]);
    net.sweep();
    Placed p = map_and_place(net);
    TimingOptions hp;
    hp.wire_model = WireModel::SteinerHpwl;
    TimingOptions st;
    st.wire_model = WireModel::SpanningTree;
    const TimingReport r_hp = analyze_timing(p.netlist, p.lib, p.view, p.positions, hp);
    const TimingReport r_st = analyze_timing(p.netlist, p.lib, p.view, p.positions, st);
    // Both models give positive finite delays of the same magnitude.
    EXPECT_GT(r_hp.critical_delay, 0.0);
    EXPECT_GT(r_st.critical_delay, 0.0);
    EXPECT_LT(r_hp.critical_delay / r_st.critical_delay, 3.0);
    EXPECT_GT(r_hp.critical_delay / r_st.critical_delay, 1.0 / 3.0);
}

// ------------------------------------------------------------------- slack

TEST(Slack, CriticalPathHasZeroSlackAtOwnDelay) {
    Rng rng(15);
    Network net("sl");
    std::vector<NodeId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int i = 0; i < 60; ++i) {
        const NodeId a = pool[rng.next_below(pool.size())];
        const NodeId b = pool[rng.next_below(pool.size())];
        pool.push_back(a == b ? net.make_not(a) : net.make_and2(a, b));
    }
    for (int i = 0; i < 4; ++i) net.add_output("o" + std::to_string(i),
                                               pool[pool.size() - 1 - i]);
    net.sweep();
    Placed p = map_and_place(net);
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions);
    const SlackReport slack = analyze_slack(p.netlist, p.lib, rep);
    ASSERT_EQ(slack.slack.size(), p.netlist.gate_count());
    EXPECT_NEAR(slack.required_time, rep.critical_delay, 1e-12);
    // The critical output driver has (near) zero slack; the backward pass
    // uses worst-case stages, so allow a small phase-asymmetry tolerance.
    ASSERT_FALSE(rep.critical_path.empty());
    EXPECT_NEAR(slack.slack[rep.critical_path.back()], 0.0, 1e-9);
    EXPECT_GE(slack.worst_slack, -0.05 * rep.critical_delay);
    // Slack never exceeds the target (everything is constrained).
    for (const double s2 : slack.slack) EXPECT_LE(s2, slack.required_time + 1e-9);
}

TEST(Slack, TighterRequirementCreatesViolations) {
    Network net("sl2");
    NodeId s = net.add_input("a");
    const NodeId b = net.add_input("b");
    for (int i = 0; i < 8; ++i) s = net.make_nand(std::array{s, b});
    net.add_output("f", s);
    Placed p = map_and_place(net);
    const TimingReport rep = analyze_timing(p.netlist, p.lib, p.view, p.positions);
    const SlackReport at_delay = analyze_slack(p.netlist, p.lib, rep);
    EXPECT_EQ(at_delay.violations, 0u);
    const SlackReport tight = analyze_slack(p.netlist, p.lib, rep, rep.critical_delay / 2.0);
    EXPECT_GT(tight.violations, 0u);
    EXPECT_LT(tight.worst_slack, 0.0);
    const SlackReport loose = analyze_slack(p.netlist, p.lib, rep, rep.critical_delay * 2.0);
    EXPECT_EQ(loose.violations, 0u);
    EXPECT_GT(loose.worst_slack, 0.0);
}

}  // namespace
}  // namespace lily
