// Bit-identity goldens for the StageExecutor refactor: every flow entry
// point's output (mapped BLIF + metrics) is pinned against a golden file
// generated before the pass-manager rewrite, at 1 and 8 threads. A diff
// here means the refactor changed a *result*, not just the orchestration.
//
// Regenerate (only when an intentional QoR change lands) with
//   LILY_UPDATE_GOLDENS=1 ./golden_test
// and commit the files under tests/data/golden/.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuits/benchmarks.hpp"
#include "flow/flow.hpp"
#include "flow/job.hpp"
#include "flow/pipeline.hpp"
#include "library/standard_cells.hpp"
#include "netlist/blif.hpp"
#include "netlist/delta.hpp"

namespace lily {
namespace {

std::string golden_dir() { return std::string(LILY_SOURCE_DIR) + "/tests/data/golden/"; }

bool update_mode() {
    const char* env = std::getenv("LILY_UPDATE_GOLDENS");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

std::string format_metrics(const FlowMetrics& m) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "gates %zu\ncell_area %.17g\nchip_area %.17g\n"
                  "wirelength %.17g\ncritical_delay %.17g\nmax_congestion %.17g\n",
                  m.gate_count, m.cell_area, m.chip_area, m.wirelength, m.critical_delay,
                  m.max_congestion);
    return buf;
}

std::string render(const FlowMetrics& metrics, const std::string& blif) {
    return format_metrics(metrics) + "---blif---\n" + blif;
}

/// Compare against (or, in update mode, rewrite) tests/data/golden/<name>.
/// Missing goldens skip rather than fail so a fresh checkout without the
/// data still builds green; CI ships the files.
void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_dir() + name;
    if (update_mode()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) GTEST_SKIP() << "golden missing: " << path << " (set LILY_UPDATE_GOLDENS=1)";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), actual) << "output diverged from pre-refactor golden " << name;
}

FlowOptions options_with_threads(std::size_t threads) {
    FlowOptions opts;
    opts.check = CheckLevel::Off;
    opts.verify = VerifyLevel::Off;
    opts.budget.total_ms = 0.0;  // unlimited: budgets must not perturb goldens
    opts.threads = threads;
    return opts;
}

class GoldenFlow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenFlow, BaselineBatch) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    const FlowResult res =
        run_baseline_flow(net, lib, options_with_threads(GetParam()));
    check_golden("baseline_prio10.txt",
                 render(res.metrics, write_blif(res.netlist.to_network(lib, "golden"))));
}

TEST_P(GoldenFlow, LilyBatch) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    const FlowResult res = run_lily_flow(net, lib, options_with_threads(GetParam()));
    check_golden("lily_prio10.txt",
                 render(res.metrics, write_blif(res.netlist.to_network(lib, "golden"))));
}

TEST_P(GoldenFlow, LilyBatchDelayObjective) {
    const Library lib = load_msu_big();
    const Network net = make_alu(5, false);
    FlowOptions opts = options_with_threads(GetParam());
    opts.objective = MapObjective::Delay;
    const FlowResult res = run_lily_flow(net, lib, opts);
    check_golden("lily_alu5_delay.txt",
                 render(res.metrics, write_blif(res.netlist.to_network(lib, "golden"))));
}

TEST_P(GoldenFlow, EcoAfterLocalDelta) {
    const Library lib = load_msu_big();
    const Network net = make_priority_controller(10);
    StatusOr<PipelineState> built =
        build_pipeline(net, lib, options_with_threads(GetParam()));
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    PipelineState state = std::move(built).value();
    const NetDelta delta = local_delta(state.net, 3, 0xEC0);
    const StatusOr<EcoStats> eco = run_eco_flow_checked(state, delta);
    ASSERT_TRUE(eco.is_ok()) << eco.status().to_string();
    check_golden("eco_prio10_d3.txt",
                 render(state.flow.metrics,
                        write_blif(state.flow.netlist.to_network(lib, "golden"))));
}

TEST_P(GoldenFlow, ServedJob) {
    // The serving layer's unit of work, run in-process: what a warm worker
    // executes per dispatched job must keep producing these exact bytes.
    std::ifstream genlib_in(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib",
                            std::ios::binary);
    ASSERT_TRUE(genlib_in.good());
    std::ostringstream genlib_buf;
    genlib_buf << genlib_in.rdbuf();

    JobSpec spec;
    spec.name = "golden";
    spec.blif = write_blif(make_alu(4, false));
    spec.genlib = genlib_buf.str();
    spec.options.kind = JobFlowKind::Lily;
    spec.options.threads = static_cast<std::uint32_t>(GetParam());
    const JobOutcome out = run_flow_job(spec);
    ASSERT_EQ(out.state, JobState::Ok) << out.status_message;
    check_golden("job_alu4.txt", render(out.metrics, out.mapped_blif));
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenFlow, ::testing::Values(std::size_t{1},
                                                                std::size_t{8}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lily
