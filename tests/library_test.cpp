#include <gtest/gtest.h>

#include <array>

#include "library/expr.hpp"
#include "library/library.hpp"
#include "library/pattern.hpp"
#include "library/standard_cells.hpp"

namespace lily {
namespace {

// -------------------------------------------------------------------- expr

TEST(Expr, ParseSimple) {
    const ParsedEquation eq = parse_equation("O = a*b + !c");
    EXPECT_EQ(eq.output, "O");
    ASSERT_EQ(eq.input_names.size(), 3u);
    EXPECT_EQ(eq.input_names[0], "a");
    EXPECT_EQ(eq.input_names[2], "c");
    // minterm (a,b,c) bits: f = ab + !c
    EXPECT_TRUE(eval_expr(*eq.expr, 0b011));   // a=1,b=1
    EXPECT_TRUE(eval_expr(*eq.expr, 0b000));   // c=0
    EXPECT_FALSE(eval_expr(*eq.expr, 0b100));  // only c=1
}

TEST(Expr, PostfixComplementAndParens) {
    const ParsedEquation eq = parse_equation("Y=(a+b)'*c");
    EXPECT_TRUE(eval_expr(*eq.expr, 0b100));   // a=0,b=0,c=1
    EXPECT_FALSE(eval_expr(*eq.expr, 0b101));  // a=1
    EXPECT_FALSE(eval_expr(*eq.expr, 0b000));  // c=0
}

TEST(Expr, DoubleNegationCollapses) {
    const ParsedEquation eq = parse_equation("O=!!a");
    EXPECT_EQ(eq.expr->kind, ExprKind::Var);
}

TEST(Expr, Constants) {
    EXPECT_TRUE(eval_expr(*parse_equation("O=CONST1").expr, 0));
    EXPECT_FALSE(eval_expr(*parse_equation("O=CONST0").expr, 0));
    EXPECT_FALSE(eval_expr(*parse_equation("O=!CONST1").expr, 0));
}

TEST(Expr, RepeatedVariableSharesIndex) {
    const ParsedEquation eq = parse_equation("O=a*!b+!a*b");
    EXPECT_EQ(eq.input_names.size(), 2u);
    EXPECT_EQ(expr_var_count(*eq.expr), 2u);
    const TruthTable t = expr_truth_table(*eq.expr, 2);
    EXPECT_EQ(t, TruthTable::from_sop(Sop::xor_n(2), 2));
}

TEST(Expr, Errors) {
    EXPECT_THROW(parse_equation("no equals sign"), std::runtime_error);
    EXPECT_THROW(parse_equation("O=a+"), std::runtime_error);
    EXPECT_THROW(parse_equation("O=(a"), std::runtime_error);
    EXPECT_THROW(parse_equation("O=a b"), std::runtime_error);
    EXPECT_THROW(parse_equation(" =a"), std::runtime_error);
}

TEST(Expr, ToStringRoundTrips) {
    const ParsedEquation eq = parse_equation("O=!(a*b+c)");
    const std::string s = expr_to_string(*eq.expr, eq.input_names);
    const ParsedEquation eq2 = parse_equation("O=" + s);
    EXPECT_EQ(expr_truth_table(*eq.expr, 3), expr_truth_table(*eq2.expr, 3));
}

// ----------------------------------------------------------------- pattern

TEST(Pattern, InverterPattern) {
    const ParsedEquation eq = parse_equation("O=!a");
    const auto pats = generate_patterns(eq.expr, 1);
    ASSERT_EQ(pats.size(), 1u);
    EXPECT_EQ(pats[0].internal_size(), 1u);
    EXPECT_EQ(pats[0].nodes[pats[0].root].kind, PatternKind::Inv);
}

TEST(Pattern, Nand2SinglePattern) {
    const ParsedEquation eq = parse_equation("O=!(a*b)");
    const auto pats = generate_patterns(eq.expr, 2);
    ASSERT_EQ(pats.size(), 1u);
    EXPECT_EQ(pats[0].internal_size(), 1u);
}

TEST(Pattern, Nand3HasTwoNodePatterns) {
    // !(abc) = NAND(a, INV(NAND(b,c))) — one shape up to commutativity.
    const ParsedEquation eq = parse_equation("O=!(a*b*c)");
    const auto pats = generate_patterns(eq.expr, 3);
    ASSERT_GE(pats.size(), 1u);
    for (const auto& p : pats) EXPECT_EQ(p.truth_table(), expr_truth_table(*eq.expr, 3));
    EXPECT_EQ(pats[0].internal_size(), 3u);  // nand, inv, nand
}

TEST(Pattern, ShapeCountNand6) {
    // Unordered binary trees over 6 identical leaves: Wedderburn-Etherington
    // number 6 -> 6 distinct shapes (each NAND-of-ANDs decomposition).
    const ParsedEquation eq = parse_equation("O=!(a*b*c*d*e*f)");
    const auto pats = generate_patterns(eq.expr, 6, 256);
    EXPECT_EQ(pats.size(), 6u);
    for (const auto& p : pats) EXPECT_EQ(p.truth_table(), expr_truth_table(*eq.expr, 6));
}

TEST(Pattern, XorLeafDagRepeatsVariables) {
    const ParsedEquation eq = parse_equation("O=a*!b+!a*b");
    const auto pats = generate_patterns(eq.expr, 2);
    ASSERT_GE(pats.size(), 1u);
    for (const auto& p : pats) {
        EXPECT_EQ(p.truth_table(), TruthTable::from_sop(Sop::xor_n(2), 2));
        // Leaves: a and b each appear twice.
        std::size_t leaves = 0;
        for (const auto& n : p.nodes) leaves += n.kind == PatternKind::Input ? 1 : 0;
        EXPECT_EQ(leaves, 4u);
    }
}

TEST(Pattern, AllPatternsFunctionallyCorrect) {
    for (const char* equation :
         {"O=!(a*b+c)", "O=!((a+b)*c)", "O=!(a*b+c*d)", "O=a+b+c+d", "O=!((a+b)*(c+d)*e)",
          "O=!s*a+s*b", "O=a*b*c*d*e"}) {
        const ParsedEquation eq = parse_equation(equation);
        const unsigned n = static_cast<unsigned>(eq.input_names.size());
        const TruthTable want = expr_truth_table(*eq.expr, n);
        const auto pats = generate_patterns(eq.expr, n, 128);
        ASSERT_FALSE(pats.empty()) << equation;
        for (const auto& p : pats) EXPECT_EQ(p.truth_table(), want) << equation;
    }
}

TEST(Pattern, CanonicalInvariantUnderChildSwap) {
    // NAND(a, INV(b)) and NAND(INV(b), a) must serialize identically.
    PatternGraph g1;
    g1.n_vars = 2;
    g1.nodes = {{PatternKind::Input, -1, -1, 0},
                {PatternKind::Input, -1, -1, 1},
                {PatternKind::Inv, 1, -1, 0},
                {PatternKind::Nand2, 0, 2, 0}};
    g1.root = 3;
    PatternGraph g2 = g1;
    g2.nodes[3].child0 = 2;
    g2.nodes[3].child1 = 0;
    EXPECT_EQ(g1.canonical(), g2.canonical());
}

TEST(Pattern, DepthIsLongestPath) {
    const ParsedEquation eq = parse_equation("O=!(a*b*c*d)");
    const auto pats = generate_patterns(eq.expr, 4, 64);
    // Balanced: NAND(INV(NAND(a,b)), INV(NAND(c,d))) depth 3.
    // Skewed: NAND(a, INV(NAND(b, INV(NAND(c,d))))) depth 5.
    std::size_t min_d = 99, max_d = 0;
    for (const auto& p : pats) {
        min_d = std::min(min_d, p.depth());
        max_d = std::max(max_d, p.depth());
    }
    EXPECT_EQ(min_d, 3u);
    EXPECT_EQ(max_d, 5u);
}

// ----------------------------------------------------------------- library

TEST(Genlib, ParseMinimal) {
    const Library lib = read_genlib(R"(
# comment
GATE inv 1.0 O=!a;
PIN a INV 0.1 1.0 0.4 2.0 0.3 1.5
GATE nd2 2.0 O=!(a*b);
PIN * INV 0.1 1.0 0.5 2.5 0.4 2.0
)");
    EXPECT_EQ(lib.size(), 2u);
    const Gate& inv = lib.gate(0);
    EXPECT_EQ(inv.name, "inv");
    EXPECT_DOUBLE_EQ(inv.area, 1.0);
    ASSERT_EQ(inv.pins.size(), 1u);
    EXPECT_DOUBLE_EQ(inv.pins[0].rise_fanout, 2.0);
    EXPECT_EQ(lib.inverter(), 0u);
    EXPECT_EQ(lib.nand2(), 1u);
    const Gate& nd2 = lib.gate(1);
    ASSERT_EQ(nd2.pins.size(), 2u);  // '*' expanded
    EXPECT_EQ(nd2.pins[1].name, "b");
}

TEST(Genlib, MultiLineEquation) {
    const Library lib = read_genlib("GATE big 4.0 O=!(a*b+\nc*d);\nPIN * INV 0.1 1 1 3 1 3\n");
    ASSERT_EQ(lib.size(), 1u);
    EXPECT_EQ(lib.gate(0).n_inputs(), 4u);
}

TEST(Genlib, Errors) {
    EXPECT_THROW(read_genlib("GATE x 1.0\n"), std::runtime_error);
    EXPECT_THROW(read_genlib("PIN a INV 0.1 1 1 1 1 1\n"), std::runtime_error);
    EXPECT_THROW(read_genlib("GATE x 1.0 O=!a;\nPIN b INV 0.1 1 1 1 1 1\n"),
                 std::runtime_error);  // pin not in equation
    EXPECT_THROW(read_genlib("GATE x 1.0 O=!(a*b);\nPIN a INV 0.1 1 1 1 1 1\n"),
                 std::runtime_error);  // missing pin b
    EXPECT_THROW(read_genlib("GATE x 1.0 O=!a;\nPIN a BAD 0.1 1 1 1 1 1\n"), std::runtime_error);
    EXPECT_THROW(read_genlib("GATE x 1.0 O=!a\n"), std::runtime_error);  // missing ';'
    EXPECT_THROW(read_genlib("HELLO\n"), std::runtime_error);
}

TEST(Genlib, OverFaninGateSkippedNotFatal) {
    // An 11-input gate exceeds the matcher's fanin limit; the reader must
    // skip it with a diagnostic and keep the rest of the library usable.
    std::string text = "GATE wide 9.0 O=!(a*b*c*d*e*f*g*h*i*j*k);\nPIN * INV 0.1 1 1 1 1 1\n";
    text += "GATE inv 1.0 O=!a;\nPIN a INV 0.1 1 1 1 1 1\n";
    const Library lib = read_genlib(text);
    EXPECT_EQ(lib.size(), 1u);
    EXPECT_EQ(lib.gate(0).name, "inv");
    ASSERT_EQ(lib.skipped_gates().size(), 1u);
    EXPECT_EQ(lib.skipped_gates()[0].name, "wide");
    EXPECT_EQ(lib.skipped_gates()[0].line_no, 1u);
    EXPECT_NE(lib.skipped_gates()[0].reason.find("limit 10"), std::string::npos)
        << lib.skipped_gates()[0].reason;
}

TEST(Genlib, CheckedReaderReportsLineNumbers) {
    const StatusOr<Library> bad = read_genlib_checked("GATE ok 1.0 O=!a;\n"
                                                      "PIN a INV 0.1 1 1 1 1 1\n"
                                                      "GATE broken 1.0 O=!a\n");
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::ParseError);
    EXPECT_NE(bad.status().to_string().find("unterminated"), std::string::npos)
        << bad.status().to_string();
}

TEST(Genlib, TypicalInputLoad) {
    const Library lib = read_genlib(
        "GATE g 2.0 O=!(a*b);\nPIN a INV 0.1 1 1 1 1 1\nPIN b INV 0.3 1 1 1 1 1\n");
    EXPECT_DOUBLE_EQ(lib.gate(0).typical_input_load(), 0.2);
}

// ---------------------------------------------------------- standard cells

TEST(StandardCells, TinyLoadsAndValidates) {
    const Library lib = load_msu_tiny();
    EXPECT_EQ(lib.name(), "msu_tiny");
    EXPECT_GE(lib.size(), 12u);
    EXPECT_EQ(lib.max_gate_inputs(), 3u);
    EXPECT_NE(lib.inverter(), kNullGate);
    EXPECT_NE(lib.nand2(), kNullGate);
}

TEST(StandardCells, BigLoadsAndValidates) {
    const Library lib = load_msu_big();
    EXPECT_EQ(lib.max_gate_inputs(), 6u);
    const Library tiny = load_msu_tiny();
    EXPECT_GT(lib.size(), tiny.size());
    // Big library contains every tiny gate by name.
    for (const Gate& g : tiny.gates()) {
        EXPECT_TRUE(lib.find(g.name).has_value()) << g.name;
    }
}

TEST(StandardCells, InverterIsSmallestAreaInv) {
    const Library lib = load_msu_tiny();
    const Gate& inv = lib.gate(lib.inverter());
    EXPECT_EQ(inv.name, "inv1");
    for (const Gate& g : lib.gates()) {
        if (g.n_inputs() == 1 && g.function == inv.function) {
            EXPECT_GE(g.area, inv.area);
        }
    }
}

TEST(StandardCells, GateFunctionsSpotCheck) {
    const Library lib = load_msu_big();
    const Gate& aoi22 = lib.gate(*lib.find("aoi22"));
    // f = !(ab + cd); check a few minterms (a,b,c,d) = bits 0..3.
    EXPECT_TRUE(aoi22.function.get(0b0000));
    EXPECT_FALSE(aoi22.function.get(0b0011));
    EXPECT_FALSE(aoi22.function.get(0b1100));
    EXPECT_TRUE(aoi22.function.get(0b1010));
    const Gate& mux = lib.gate(*lib.find("mux21"));
    EXPECT_EQ(mux.n_inputs(), 3u);
}

TEST(StandardCells, PatternsPresentAndBoundedEverywhere) {
    const std::array<Library, 2> libs{load_msu_tiny(), load_msu_big()};
    for (const Library& lib : libs) {
        for (const Gate& g : lib.gates()) {
            EXPECT_FALSE(g.patterns.empty()) << g.name;
            EXPECT_LE(g.patterns.size(), 64u) << g.name;
            for (const PatternGraph& p : g.patterns) {
                EXPECT_EQ(p.truth_table(), g.function) << g.name;
                EXPECT_LE(p.depth(), 12u) << g.name;
            }
        }
    }
}

}  // namespace
}  // namespace lily
