// Chaos harness for the serving layer: hammer a real lily_serve daemon with
// a job mix where a configurable fraction is poisoned (segfault, abort,
// OOM, hang, wedge — some only at full tier, some sticky), SIGKILL the
// daemon mid-run and restart it against the same spool, and then demand the
// robustness contract held:
//   * the daemon never died except when we killed it,
//   * every accepted job reached a terminal verdict (Ok/Degraded/Error),
//   * no accepted job was lost across the kill/restart,
//   * the spool passes the CheckStage::Serve audit afterwards.
//
//   serve_chaos [--jobs=N] [--crash-pct=P] [--workers=N] [--quick] [--seed=N]
//
// Defaults: 200 jobs, 20% poisoned, 4 workers. --quick drops to 40 jobs for
// sanitizer CI. Exit 0 iff every invariant held.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "check/serve_checker.hpp"
#include "circuits/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "serve/client.hpp"
#include "serve/spool.hpp"
#include "util/subprocess.hpp"

namespace {

using namespace lily;

std::string read_genlib_text() {
    std::ifstream in(std::string(LILY_SOURCE_DIR) + "/lib/msu_tiny.genlib",
                     std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ChaosConfig {
    std::uint32_t jobs = 200;
    std::uint32_t crash_pct = 20;
    std::uint32_t workers = 4;
    std::uint64_t seed = 0xC4A05;
    double deadline_ms = 600000.0;
};

struct Tracked {
    std::uint64_t id = 0;
    std::string fault;
    JobState state = JobState::Queued;
    bool terminal = false;
};

int g_failures = 0;

void check(bool ok, const std::string& what) {
    if (!ok) {
        std::fprintf(stderr, "serve_chaos: FAIL: %s\n", what.c_str());
        ++g_failures;
    }
}

class DaemonHandle {
public:
    DaemonHandle(std::string binary, std::string socket, std::string spool,
                 std::string log, std::uint32_t workers)
        : binary_(std::move(binary)), socket_(std::move(socket)), spool_(std::move(spool)),
          log_(std::move(log)), workers_(workers) {}

    ~DaemonHandle() {
        if (pid_ > 0) stop_process(pid_, 500.0);
    }

    bool start() {
        const std::vector<std::string> argv = {
            binary_,
            "--socket=" + socket_,
            "--spool=" + spool_,
            "--workers=" + std::to_string(workers_),
            "--queue-cap=64",
            // Tight ceilings so hang/wedge/oom jobs resolve in hundreds of
            // milliseconds, not the production 30s.
            "--wall-ms=2500",
            "--rss-mb=96",
            "--hb-timeout-ms=1000",
            "--backoff-ms=10",
            // A low recycle threshold makes the chaos run churn through
            // planned retirements *and* crash respawns concurrently.
            "--recycle-after=8",
        };
        StatusOr<pid_t> spawned = spawn_process(argv, log_);
        if (!spawned.is_ok()) {
            std::fprintf(stderr, "serve_chaos: spawn failed: %s\n",
                         spawned.status().to_string().c_str());
            return false;
        }
        pid_ = spawned.value();
        ServeClient probe(socket_);
        for (int i = 0; i < 400; ++i) {
            if (probe.health().is_ok()) return true;
            if (!alive()) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        std::fprintf(stderr, "serve_chaos: daemon did not come up\n");
        return false;
    }

    bool alive() { return pid_ > 0 && try_wait(pid_).running(); }

    void kill_hard() {
        if (pid_ <= 0) return;
        ::kill(pid_, SIGKILL);
        wait_exit(pid_);
        pid_ = -1;
    }

    ExitStatus stop_graceful() {
        if (pid_ <= 0) return ExitStatus{};
        ServeClient client(socket_);
        (void)client.shutdown(/*drain=*/false);
        const ExitStatus ended = stop_process(pid_, 4000.0);
        pid_ = -1;
        return ended;
    }

private:
    std::string binary_, socket_, spool_, log_;
    std::uint32_t workers_;
    pid_t pid_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
    ChaosConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            config.jobs = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 7));
        } else if (arg.rfind("--crash-pct=", 0) == 0) {
            config.crash_pct = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 12));
        } else if (arg.rfind("--workers=", 0) == 0) {
            config.workers = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 10));
        } else if (arg.rfind("--seed=", 0) == 0) {
            config.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg == "--quick") {
            config.jobs = 40;
        } else {
            std::fprintf(stderr, "serve_chaos: bad argument '%s'\n", arg.c_str());
            return 2;
        }
    }

    char tmpl[] = "/tmp/lily-chaos-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
        std::perror("mkdtemp");
        return 2;
    }
    const std::string dir = tmpl;
    const std::string socket = dir + "/serve.sock";
    const std::string spool = dir + "/spool";

    // A small circuit mix so the daemon sees heterogeneous work.
    const std::vector<std::string> circuits = {
        write_blif(make_alu(4)),
        write_blif(make_symmetric9()),
        write_blif(make_control_logic(12, 6, 60, 7, "ctl")),
    };
    const std::string genlib = read_genlib_text();

    // The poison mix. Plain kinds are absorbed by the degraded retry
    // (verdict Degraded); sticky kinds are terminal Errors. Both paths kill
    // real worker processes underneath the daemon.
    const std::vector<std::string> faults = {
        "serve:segv",       "serve:abort",        "serve:hang",
        "serve:wedge",      "serve:segv-sticky",  "serve:abort-sticky",
        "serve:oom-sticky", "serve:hang-sticky",
    };

    std::mt19937_64 rng(config.seed);
    DaemonHandle daemon(LILY_SERVE_BIN, socket, spool, dir + "/server.log", config.workers);
    if (!daemon.start()) return 1;

    const double deadline = now_ms() + config.deadline_ms;
    std::vector<Tracked> tracked;
    tracked.reserve(config.jobs);
    const std::uint32_t kill_at = config.jobs / 2;
    bool killed_once = false;
    std::uint64_t shed_seen = 0;

    {
        ServeClient client(socket);
        for (std::uint32_t i = 0; i < config.jobs; ++i) {
            if (i == kill_at) {
                // The centerpiece: murder the daemon mid-run with workers
                // busy and the queue loaded, then restart on the same spool.
                std::printf("serve_chaos: SIGKILL daemon at job %u/%u\n", i, config.jobs);
                daemon.kill_hard();
                killed_once = true;
                if (!daemon.start()) return 1;
            }
            JobSpec spec;
            spec.name = "chaos-" + std::to_string(i);
            spec.blif = circuits[i % circuits.size()];
            spec.genlib = genlib;
            Tracked t;
            if (rng() % 100 < config.crash_pct) {
                t.fault = faults[rng() % faults.size()];
                spec.fault_spec = t.fault;
            }
            // Submit with shed-retry: rejection is legitimate backpressure,
            // but it must be a *reply*, never a hang or a lost job.
            for (;;) {
                check(now_ms() < deadline, "submit deadline exceeded");
                if (g_failures > 0 && now_ms() >= deadline) return 1;
                const StatusOr<SubmitReply> reply = client.submit(spec);
                if (!reply.is_ok()) {
                    check(false, "submit transport error: " + reply.status().to_string());
                    return 1;
                }
                if (reply.value().accepted) {
                    t.id = reply.value().job_id;
                    break;
                }
                ++shed_seen;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::max<std::uint32_t>(reply.value().retry_after_ms, 10)));
            }
            tracked.push_back(t);
        }

        // Drain: every accepted job must reach a terminal verdict.
        for (Tracked& t : tracked) {
            while (!t.terminal && now_ms() < deadline) {
                const StatusOr<ResultReply> reply = client.wait(t.id, 2000);
                if (!reply.is_ok()) {
                    check(false, "wait transport error: " + reply.status().to_string());
                    return 1;
                }
                check(reply.value().found,
                      "job " + std::to_string(t.id) + " lost (not found)");
                if (!reply.value().found) break;
                if (reply.value().terminal) {
                    t.terminal = true;
                    t.state = reply.value().outcome.state;
                }
            }
            check(t.terminal, "job " + std::to_string(t.id) + " never became terminal");
        }
        check(daemon.alive(), "daemon died during the run");

        const StatusOr<std::string> stats = client.stats();
        if (stats.is_ok()) std::printf("serve_chaos: stats %s\n", stats.value().c_str());
    }

    const ExitStatus ended = daemon.stop_graceful();
    check(ended.kind == ExitKind::Exited && ended.code == 0,
          "daemon shutdown not clean: " + ended.to_string());

    // Tally and validate verdict semantics.
    std::map<JobState, std::uint32_t> by_state;
    std::uint32_t poisoned = 0;
    for (const Tracked& t : tracked) {
        if (t.terminal) ++by_state[t.state];
        if (!t.fault.empty()) ++poisoned;
        const bool sticky = t.fault.find("-sticky") != std::string::npos;
        if (sticky) {
            // Sticky faults fire at every tier: always a terminal error.
            check(t.state == JobState::Error,
                  "sticky-fault job " + std::to_string(t.id) + " ended " +
                      to_string(t.state) + ", expected error");
        } else if (t.fault.empty()) {
            // Clean jobs succeed — at full effort, or degraded when the
            // mid-run SIGKILL interrupted them (recovery retries at the
            // degraded tier). They must never end in error.
            check(t.state != JobState::Error, "clean job " + std::to_string(t.id) +
                                                  " ended " + to_string(t.state));
        } else {
            // Plain faults always crash the full-tier attempt, so the best
            // case is the degraded retry's verdict. Error is legal only
            // when the server kill also landed on the retry attempt and
            // exhausted the budget; Ok would mean the fault never fired.
            check(t.state != JobState::Ok,
                  "plain-fault job " + std::to_string(t.id) + " ended ok; "
                  "the injected fault never fired");
        }
    }
    check(killed_once, "daemon was never killed (harness bug)");

    // The journal must audit clean after the carnage.
    const CheckReport audit = ServeChecker{}.check_spool(spool);
    check(!audit.has_errors(), "spool audit found errors:\n" + audit.to_string());

    std::printf(
        "serve_chaos: %zu jobs (%u poisoned, %llu sheds) -> ok=%u degraded=%u error=%u; "
        "spool audit %s\n",
        tracked.size(), poisoned, static_cast<unsigned long long>(shed_seen),
        by_state[JobState::Ok], by_state[JobState::Degraded], by_state[JobState::Error],
        audit.has_errors() ? "FAILED" : "clean");

    if (g_failures == 0) {
        const std::string cmd = "rm -rf '" + dir + "'";
        if (std::system(cmd.c_str()) != 0) {
            std::fprintf(stderr, "serve_chaos: cleanup failed for %s\n", dir.c_str());
        }
        std::printf("serve_chaos: PASS\n");
        return 0;
    }
    std::fprintf(stderr, "serve_chaos: %d failure(s); artifacts kept in %s\n", g_failures,
                 dir.c_str());
    return 1;
}
