#!/usr/bin/env bash
# CI entrypoint: build twice (release with -Werror, and ASan+UBSan with the
# pipeline's CheckLevel forced to paranoid), run the full test suite on
# both, then audit the example circuits with lily_lint — including the
# injected-violation runs that prove the checkers still bite.
#
# Usage: scripts/ci.sh [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "--jobs" ]]; then JOBS="$2"; fi

run() { echo "+ $*"; "$@"; }

# ---- Build 1: release, warnings are errors -----------------------------
run cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DLILY_WERROR=ON
run cmake --build build-ci-release -j "$JOBS"
run env -C build-ci-release ctest --output-on-failure -j "$JOBS"

# ---- Build 2: ASan+UBSan, paranoid pipeline self-checks ----------------
run cmake -B build-ci-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLILY_WERROR=ON "-DLILY_SANITIZE=address;undefined"
run cmake --build build-ci-sanitize -j "$JOBS"
run env -C build-ci-sanitize LILY_CHECK_LEVEL=paranoid \
    ctest --output-on-failure -j "$JOBS"

# ---- lily_lint over the example circuits (both libraries) --------------
LINT=build-ci-sanitize/src/check/lily_lint
for blif in examples/circuits/*.blif; do
  for lib in lib/msu_tiny.genlib lib/msu_big.genlib; do
    run "$LINT" --quiet "$blif" "$lib"
  done
done

# Injected violations must be *detected* (exit code 1, not 0 and not a
# crash/usage error).
for inject in cycle offchip badpad wrong-cover dup-drive; do
  echo "+ $LINT --inject=$inject (expect exit 1)"
  set +e
  "$LINT" --quiet --inject="$inject" examples/circuits/full_adder.blif lib/msu_big.genlib
  status=$?
  set -e
  if [[ "$status" -ne 1 ]]; then
    echo "FAIL: --inject=$inject exited $status, expected 1" >&2
    exit 1
  fi
done

# ---- Recovery-path suite (sanitized build) -----------------------------
# Injected recovery-ladder faults must be *survived*: the flow completes
# (exit 0), reports itself degraded, and the fallback result passes the
# paranoid checkers (lily_lint runs them inside the flow).
for fault in parser:skip-gate placement:diverge matcher:no-match router:overbudget; do
  echo "+ $LINT --inject=$fault (expect exit 0, degraded)"
  set +e
  out="$("$LINT" --level=paranoid --inject="$fault" \
        examples/circuits/parity8.blif lib/msu_big.genlib)"
  status=$?
  set -e
  if [[ "$status" -ne 0 ]]; then
    echo "FAIL: --inject=$fault exited $status, expected 0" >&2
    exit 1
  fi
  if ! grep -q "^flow: degraded" <<<"$out"; then
    echo "FAIL: --inject=$fault did not report a degraded flow:" >&2
    echo "$out" >&2
    exit 1
  fi
done

# A starved wall-clock budget must also degrade gracefully, never abort.
echo "+ $LINT --flow --budget-ms (60s smoke, expect exit 0)"
run timeout 60 "$LINT" --flow --budget-ms=1 --level=paranoid \
    examples/circuits/parity8.blif lib/msu_big.genlib

# And the unfaulted flow must report itself clean.
echo "+ $LINT --flow (expect 'flow: clean')"
"$LINT" --flow --quiet examples/circuits/parity8.blif lib/msu_big.genlib \
  | grep -q "^flow: clean"

# ---- Trace smoke: executor spans vs FlowDiagnostics --------------------
# LILY_TRACE must dump a JSON-lines trace in which every span is closed,
# every span name comes from the shared stage table (the report's own
# stage names), and per-stage span sums equal the report's elapsed_ms
# figures — the executor stamps both from the same increment, so any drift
# means the orchestration double-counted or leaked a scope.
TRACE_DIR="$(mktemp -d)"
echo "+ LILY_TRACE trace smoke"
LILY_TRACE="$TRACE_DIR/flow.trace" "$LINT" --flow --json \
    examples/circuits/parity8.blif lib/msu_big.genlib > "$TRACE_DIR/report.json"
run python3 scripts/check_trace.py "$TRACE_DIR/flow.trace" "$TRACE_DIR/report.json"
rm -rf "$TRACE_DIR"

# ---- Formal verification (sanitized build) -----------------------------
# The prover must prove every example's mapped netlist equivalent to its
# source, the netlist lint must stay quiet on the clean corpus and flag
# every file in the malformed one, and an injected miscompare must be
# refuted with a replayed counterexample (exit 0 = refuted-as-expected).
for blif in examples/circuits/*.blif; do
  run "$LINT" --prove --quiet "$blif" lib/msu_big.genlib
  run "$LINT" --lint-netlist --quiet "$blif"
done
for bad in tests/data/bad/*.blif; do
  echo "+ $LINT --lint-netlist $bad (expect exit 1)"
  set +e
  "$LINT" --lint-netlist --quiet "$bad"
  status=$?
  set -e
  if [[ "$status" -ne 1 ]]; then
    echo "FAIL: --lint-netlist $bad exited $status, expected 1" >&2
    exit 1
  fi
done
run "$LINT" --inject=verify:miscompare --quiet \
    examples/circuits/full_adder.blif lib/msu_big.genlib

# The full flow must carry a proven verify stage end to end.
echo "+ LILY_VERIFY=prove $LINT --flow (expect 'flow: clean')"
LILY_VERIFY=prove "$LINT" --flow --quiet \
    examples/circuits/parity8.blif lib/msu_big.genlib | grep -q "^flow: clean"

# ---- ECO smoke: incremental pipeline + stale-epoch probe ---------------
# A small local delta must be absorbed incrementally with the maintained
# netlist staying equivalent, and a corrupted version stamp must be
# rejected (lily_lint exits 0 exactly when the rejection happened).
run "$LINT" --eco=3 --quiet examples/circuits/parity8.blif lib/msu_big.genlib
# The spliced ECO result must also be *provable*, not just simulation-clean.
run env LILY_VERIFY=prove "$LINT" --eco=3 --quiet \
    examples/circuits/parity8.blif lib/msu_big.genlib
run "$LINT" --inject=eco:stale-epoch --quiet \
    examples/circuits/parity8.blif lib/msu_big.genlib

# ---- ECO scaling gate (release build: timing comparison) ---------------
# A 1%-of-nodes local edit must reach a 5x speedup over the full reflow,
# with every sweep row simulation-equivalent to its source network.
run build-ci-release/bench/eco_scaling --gate=5 --out=BENCH_eco.json
echo "+ BENCH_eco.json:"
cat BENCH_eco.json

# ---- CEC cost curve (release build) ------------------------------------
# cec_scaling proves every mapped workload equivalent (exit non-zero on any
# non-Proven verdict) and records the sim-vs-prove cost curve.
run build-ci-release/bench/cec_scaling --quick --out=BENCH_cec.json
echo "+ BENCH_cec.json:"
cat BENCH_cec.json

# ---- Perf smoke: calibrated regression + determinism check -------------
# perf_scaling runs the full Lily flow single- and multi-threaded, writes
# BENCH_perf.json, and exits non-zero if (a) multi-threaded output is not
# bit-identical to single-threaded, or (b) the calibrated single-thread
# cost regressed >20% over bench/BENCH_baseline.json.
run build-ci-release/bench/perf_scaling --quick \
    --baseline=bench/BENCH_baseline.json --out=BENCH_perf.json
echo "+ BENCH_perf.json:"
cat BENCH_perf.json

# Hot-path kernel microbenchmarks (SpMV, matcher walk, rectangle assembly,
# DP scan). Exits non-zero when a warmed pooled kernel allocates — the
# steady-state allocation-free contract of the CSR/arena layout.
run build-ci-release/bench/kernels --quick --out=BENCH_kernels.json
echo "+ BENCH_kernels.json:"
cat BENCH_kernels.json

# The CSR adjacency property tests must also hold under ASan+UBSan: the
# frozen views are raw spans over pooled storage, exactly where a lifetime
# bug would hide from the release build.
run build-ci-sanitize/tests/csr_test

# ---- Serving layer: chaos, load-shed, throughput -----------------------
# The chaos harness floods a live daemon with a poisoned job mix (segv,
# abort, oom, hang, wedge; sticky and retryable) and SIGKILLs the daemon
# mid-run: the server must never die on a job, every accepted job must
# reach a terminal verdict across the restart, and the spool must audit
# clean. The sanitized build runs the short mix to keep CI time flat.
run build-ci-release/tests/serve_chaos
run build-ci-sanitize/tests/serve_chaos --quick

# Load-shed smoke: a one-slot, one-deep daemon whose only worker is wedged
# must shed a 32-submit burst (reject-with-retry-after), never queue it
# without bound and never hang the client. --no-wait keeps the burst
# admission-only: a closed loop would block forever on the wedged worker.
SERVE=build-ci-release/src/serve/lily_serve
CLIENT=build-ci-release/src/serve/lily_client
SERVE_DIR="$(mktemp -d)"
SOCK="$SERVE_DIR/ci.sock"
"$SERVE" --socket="$SOCK" --spool="$SERVE_DIR/spool" --workers=1 --queue-cap=1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  "$CLIENT" --socket="$SOCK" health >/dev/null 2>&1 && break
  sleep 0.05
done
out="$("$CLIENT" --socket="$SOCK" load --jobs=32 --no-wait \
      --inject=serve:hang-sticky \
      examples/circuits/full_adder.blif lib/msu_tiny.genlib)"
echo "+ $out"
if grep -q '"shed":0,' <<<"$out"; then
  echo "FAIL: 32-submit burst against a wedged one-slot daemon never shed" >&2
  exit 1
fi
"$CLIENT" --socket="$SOCK" shutdown || true
wait "$SERVE_PID" || true
rm -rf "$SERVE_DIR"

# Throughput/latency/shed-rate bench; gates on served-vs-in-process bit
# identity at 1/4/8 worker slots (cold and warm pools), a non-zero shed
# rate under overload, and warm throughput >= 0.8x the committed
# bench/BENCH_serve.json recording (machine-noise tolerant regression
# gate on the warm-pool speedup).
run build-ci-release/bench/serve_throughput --quick --out=BENCH_serve.json \
    --baseline=bench/BENCH_serve.json --gate-ratio=0.8
echo "+ BENCH_serve.json:"
cat BENCH_serve.json

# ---- clang-tidy (advisory; runs only when installed) -------------------
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B build-ci-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git ls-files 'src/*.cpp' | xargs -P "$JOBS" -n 1 \
    clang-tidy -p build-ci-release --quiet || true
fi

echo "CI OK"
