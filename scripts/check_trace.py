#!/usr/bin/env python3
"""Validate a LILY_TRACE JSON-lines dump against a --json flow report.

Usage: check_trace.py <trace-file> <report-json-file>

Checks (all hard failures):
  * the trace parses as JSON-lines with flow/span/counter records;
  * every flow and span record is closed (no scope leaked);
  * every span name is a stage the report knows — i.e. it comes from the
    shared stage-name table in src/flow/stage.cpp, the same names the
    FlowDiagnostics "stages" array uses;
  * per-stage span sums equal the report's per-stage elapsed_ms figures
    (the executor feeds the identical increment to both sides, so the
    match is exact up to float round-trip);
  * memory counters (alloc_count.<stage> / alloc_bytes.<stage> /
    rss_peak_kb.<stage>) reference known stages, are non-negative, and
    arrive exactly one triple per span — the StageScope destructor emits
    them together with the span close;
  * the report's embedded "trace" block agrees with the file dump.

Exit code 0 on success, 1 on any violation.
"""
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_trace.py <trace-file> <report-json-file>")
    trace_path, report_path = sys.argv[1], sys.argv[2]

    with open(report_path, "r", encoding="utf-8") as f:
        report = json.load(f)
    stages = {s["name"]: s for s in report.get("stages", [])}
    if not stages:
        fail("report carries no stages array")

    flows, spans, counters = [], [], []
    with open(trace_path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")
            kind = rec.get("type")
            if kind == "flow":
                flows.append(rec)
            elif kind == "span":
                spans.append(rec)
            elif kind == "counter":
                counters.append(rec)
            else:
                fail(f"line {lineno} has unknown record type {kind!r}")
    if not flows:
        fail("trace carries no flow records")
    if not spans:
        fail("trace carries no span records")

    for rec in flows + spans:
        if not rec.get("closed"):
            fail(f"unclosed record: {rec}")

    for s in spans:
        if s["name"] not in stages:
            fail(f"span name {s['name']!r} is not a stage the report knows "
                 f"(shared stage table violation)")

    sums = {}
    for s in spans:
        sums[s["name"]] = sums.get(s["name"], 0.0) + s["elapsed_ms"]
    for name, total in sums.items():
        want = stages[name]["elapsed_ms"]
        if abs(total - want) > 1e-9 * max(1.0, abs(want)):
            fail(f"stage {name!r}: span sum {total!r} != report elapsed {want!r}")

    # Memory counters: one alloc_count/alloc_bytes/rss_peak_kb triple per
    # span, each naming a known stage, each value non-negative.
    span_count = {}
    for s in spans:
        span_count[s["name"]] = span_count.get(s["name"], 0) + 1
    mem_prefixes = ("alloc_count.", "alloc_bytes.", "rss_peak_kb.")
    mem_count = {p: {} for p in mem_prefixes}
    for c in counters:
        name, value = c.get("name", ""), c.get("value", 0.0)
        for p in mem_prefixes:
            if not name.startswith(p):
                continue
            stage = name[len(p):]
            if stage not in stages:
                fail(f"counter {name!r} references unknown stage {stage!r}")
            if value < 0:
                fail(f"counter {name!r} is negative: {value!r}")
            mem_count[p][stage] = mem_count[p].get(stage, 0) + 1
    for p in mem_prefixes:
        if mem_count[p] != span_count:
            fail(f"{p}* counters per stage {mem_count[p]!r} do not match "
                 f"span executions {span_count!r}")

    embedded = report.get("trace")
    if embedded is None:
        fail("report is missing its embedded trace block")
    if len(embedded.get("spans", [])) != len(spans):
        fail(f"embedded trace has {len(embedded.get('spans', []))} spans, "
             f"file dump has {len(spans)}")

    print(f"check_trace: ok — {len(spans)} spans across {len(flows)} flows, "
          f"{len(sums)} stages, {len(counters)} counters, "
          f"sums consistent with diagnostics")


if __name__ == "__main__":
    main()
